"""Checker-level tests for ``repro lint`` (the syntactic rules RPL001-RPL006)
plus the shared framework: suppression edge cases, baselines, scopes, SARIF
and the CLI.  The dataflow rules RPL007-RPL010 live in
``tests/test_lint_dataflow.py``.

Each rule gets a violating fixture proving it fires and a clean twin proving
it stays quiet, plus the end-to-end assertion that the repo itself is clean.
"""

import json
from pathlib import Path

import repro
from repro.lint import Project, default_checkers, main as lint_main, run_checkers, run_lint
from repro.lint.checkers import (
    DtypePromotionChecker,
    GemmLayoutChecker,
    ProfilerPhaseChecker,
    SpecCacheKeyChecker,
    SwallowedExceptionChecker,
    TemporalStateRegistryChecker,
)

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def lint_sources(sources, aux=None, checkers=None):
    project = Project.from_sources(sources, aux)
    return run_checkers(project, checkers or default_checkers())


def rules_of(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# RPL001 - dtype promotion
# ---------------------------------------------------------------------------

RPL001_BAD = """\
import numpy as np


def step(x: np.ndarray, a_bar: float) -> np.ndarray:
    return np.sqrt(a_bar) * x
"""

RPL001_CLEAN = """\
import math

import numpy as np


def step(x: np.ndarray, a_bar: float) -> np.ndarray:
    coeff = math.sqrt(a_bar)          # weak Python float: fine
    other = float(np.sqrt(a_bar))     # sanctioned wrap: fine
    grid = np.sqrt(np.arange(4))      # array argument: fine
    np.sqrt(x, out=x)                 # in-place on an array: fine
    chained = x * 2.0
    also = np.sqrt(chained)           # derived array name: fine
    return coeff * other * grid.sum() * also
"""


def test_rpl001_flags_scalar_np_math():
    findings = lint_sources({"src/repro/diffusion/bad.py": RPL001_BAD})
    assert [f.rule for f in findings] == ["RPL001"]
    assert findings[0].line == 5
    assert "math.sqrt" in findings[0].message


def test_rpl001_clean_twin_is_quiet():
    assert lint_sources({"src/repro/diffusion/good.py": RPL001_CLEAN}) == []


def test_rpl001_only_applies_to_hot_modules():
    # Same violating code outside nn/diffusion/quant is out of scope.
    assert lint_sources({"src/repro/workloads/bad.py": RPL001_BAD}) == []


# ---------------------------------------------------------------------------
# RPL002 - temporal-state registry
# ---------------------------------------------------------------------------

RPL002_BAD = """\
class QThing:
    def __init__(self):
        self._prev_buf = None
        self._cols_bufs = [None, None]
        self._cols_flip = 0

    def forward(self, x):
        d = self.__dict__
        d["_prev_buf"] = x
        self._cols_flip ^= 1

    def remap_rows(self, mapping, old_batch):
        self._prev_buf = None

    def state_nbytes(self):
        return 0

    def reset_state(self):
        pass
"""

RPL002_CLEAN = """\
class QThing:
    def __init__(self):
        self._prev_buf = None
        self._cols_bufs = [None, None]
        self._cols_flip = 0

    def forward(self, x):
        d = self.__dict__
        d["_prev_buf"] = x
        self._cols_flip ^= 1

    def remap_rows(self, mapping, old_batch):
        self._prev_buf = None

    def state_nbytes(self):
        return sum(b.nbytes for b in (self._prev_buf, *self._cols_bufs) if b is not None)

    def reset_state(self):
        self._prev_buf = None
        self._cols_bufs = [None, None]
"""


def test_rpl002_flags_unregistered_state():
    findings = lint_sources({"src/repro/quant/bad.py": RPL002_BAD})
    assert rules_of(findings) == {"RPL002"}
    by_attr = {f.message.split("'")[1]: f.message for f in findings}
    assert "state_nbytes" in by_attr["_prev_buf"]
    assert "reset_state" in by_attr["_prev_buf"]
    assert "state_nbytes" in by_attr["_cols_bufs"]
    # _cols_flip holds only int scalars: never buffer state, never flagged.
    assert "_cols_flip" not in by_attr


def test_rpl002_clean_twin_is_quiet():
    assert lint_sources({"src/repro/quant/good.py": RPL002_CLEAN}) == []


def test_rpl002_ignores_classes_without_registry():
    # A sampler holding _prev_* history but no remap/nbytes registry is fine.
    source = RPL002_BAD.replace("remap_rows", "other").replace("state_nbytes", "misc")
    assert lint_sources({"src/repro/diffusion/sampler_like.py": source}) == []


# ---------------------------------------------------------------------------
# RPL003 - spec/cache-key coverage
# ---------------------------------------------------------------------------

RPL003_SUITE_BAD = """\
class BenchmarkSpec:
    name: str
    knob: int

    def signature(self):
        return {"name": self.name}
"""

RPL003_HASHING_BAD = """\
def spec_signature(spec):
    return {"name": spec.name}
"""

RPL003_SUITE_CLEAN = RPL003_SUITE_BAD.replace(
    'return {"name": self.name}', 'return {"name": self.name, "knob": self.knob}'
)
RPL003_HASHING_CLEAN = RPL003_HASHING_BAD.replace(
    'return {"name": spec.name}',
    'return {"name": spec.name, "knob": getattr(spec, "knob", None)}',
)


def test_rpl003_flags_uncovered_field():
    findings = lint_sources(
        {
            "src/repro/workloads/suite.py": RPL003_SUITE_BAD,
            "src/repro/runtime/hashing.py": RPL003_HASHING_BAD,
        },
        checkers=[SpecCacheKeyChecker()],
    )
    assert len(findings) == 1
    assert "'knob'" in findings[0].message
    assert "signature()" in findings[0].message
    assert "spec_signature()" in findings[0].message


def test_rpl003_clean_twin_is_quiet():
    findings = lint_sources(
        {
            "src/repro/workloads/suite.py": RPL003_SUITE_CLEAN,
            "src/repro/runtime/hashing.py": RPL003_HASHING_CLEAN,
        },
        checkers=[SpecCacheKeyChecker()],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# RPL004 - profiler-phase coverage
# ---------------------------------------------------------------------------

RPL004_FUNCTIONAL_BAD = """\
from .. import profiling


def group_norm(x):
    return x


def layer_norm(x):
    prof = profiling.active()
    if prof:
        prof.add("mystery", 1.0)
    return x


def im2col(x):
    prof = profiling.active()
    if prof:
        prof.add("im2col", 1.0)
    return x


def im2col_t(x):
    prof = profiling.active()
    if prof:
        prof.add("im2col", 1.0)
    return x
"""

RPL004_FUNCTIONAL_CLEAN = RPL004_FUNCTIONAL_BAD.replace(
    "def group_norm(x):\n    return x",
    'def group_norm(x):\n    prof = profiling.active()\n'
    '    if prof:\n        prof.add("norm", 1.0)\n    return x',
).replace('"mystery"', '"norm"')

RPL004_GATES = "norm im2col calibration trajectory quantize"


def _rpl004_project(functional_src):
    return {
        "src/repro/nn/functional.py": functional_src,
        "src/repro/bench.py": f'"""{RPL004_GATES}"""\n',
    }


def test_rpl004_flags_unprofiled_entry_point_and_unknown_bucket():
    findings = lint_sources(
        _rpl004_project(RPL004_FUNCTIONAL_BAD),
        aux={"scripts/check_bench.py": RPL004_GATES},
        checkers=[ProfilerPhaseChecker()],
    )
    messages = "\n".join(f.message for f in findings)
    assert "'group_norm'" in messages  # lost its hook
    assert "'mystery'" in messages  # bucket unknown to both gate files
    assert len([f for f in findings if "mystery" in f.message]) == 2


def test_rpl004_clean_twin_is_quiet():
    findings = lint_sources(
        _rpl004_project(RPL004_FUNCTIONAL_CLEAN),
        aux={"scripts/check_bench.py": RPL004_GATES},
        checkers=[ProfilerPhaseChecker()],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# RPL005 - GEMM layout discipline
# ---------------------------------------------------------------------------

RPL005_BAD = """\
import numpy as np

from ..nn import functional as F


def run(cols, w, out_hw, a, b):
    part = F.conv2d_from_cols_t(cols.T, w, out_hw)
    return part + np.matmul(a, b.transpose(1, 0))
"""

RPL005_CLEAN = """\
import numpy as np

from ..nn import functional as F


def run(cols, w, out_hw, a, b):
    part = F.conv2d_from_cols_t(np.ascontiguousarray(cols.T), w, out_hw)
    return part + np.matmul(a, np.ascontiguousarray(b.transpose(1, 0)))
"""


def test_rpl005_flags_strided_views_into_gemms():
    findings = lint_sources({"src/repro/quant/bad.py": RPL005_BAD})
    assert [f.rule for f in findings] == ["RPL005", "RPL005"]
    assert "cols.T" in findings[0].message
    assert "ascontiguousarray" in findings[0].message


def test_rpl005_clean_twin_is_quiet():
    assert lint_sources({"src/repro/quant/good.py": RPL005_CLEAN}) == []


# ---------------------------------------------------------------------------
# RPL006 - swallowed exceptions in the serving stack
# ---------------------------------------------------------------------------

RPL006_BAD = """\
def step(session):
    try:
        session.forward()
    except ValueError:
        pass
    try:
        session.forward()
    except Exception as exc:
        log(exc)
"""

RPL006_CLEAN = """\
def step(session):
    try:
        session.forward()
    except ValueError:
        raise
    try:
        session.forward()
    except Exception as exc:
        session.mark_unhealthy(str(exc))
    try:
        session.forward()
    except RuntimeError:
        if not session.healthy:
            return None
    try:
        session.forward()
    except OSError:  # terminal by design  # repro-lint: ignore[RPL006]
        log("gone")
"""


def test_rpl006_flags_swallowed_exceptions():
    findings = lint_sources({"src/repro/core/session.py": RPL006_BAD})
    assert [f.rule for f in findings] == ["RPL006", "RPL006"]
    assert "swallows the exception" in findings[0].message
    assert "ValueError" in findings[0].message
    assert "ignore[RPL006]" in findings[0].message


def test_rpl006_clean_twin_is_quiet():
    assert lint_sources({"src/repro/runtime/serving.py": RPL006_CLEAN}) == []


def test_rpl006_only_applies_to_serving_stack():
    # The same swallowing handler elsewhere is out of scope: RPL006 guards
    # the session-health contract, not general exception hygiene.
    assert lint_sources({"src/repro/runtime/runner.py": RPL006_BAD}) == []
    assert lint_sources({"src/repro/diffusion/samplers.py": RPL006_BAD}) == []


# ---------------------------------------------------------------------------
# framework: suppression, baseline, CLI
# ---------------------------------------------------------------------------


def test_suppression_same_line():
    source = RPL001_BAD.replace(
        "return np.sqrt(a_bar) * x",
        "return np.sqrt(a_bar) * x  # repro-lint: ignore[RPL001]",
    )
    assert lint_sources({"src/repro/diffusion/bad.py": source}) == []


def test_suppression_own_line_covers_next():
    source = RPL001_BAD.replace(
        "    return np.sqrt(a_bar) * x",
        "    # repro-lint: ignore[RPL001]\n    return np.sqrt(a_bar) * x",
    )
    assert lint_sources({"src/repro/diffusion/bad.py": source}) == []


def test_suppression_wildcard_and_wrong_rule():
    wildcard = RPL001_BAD.replace(
        "return np.sqrt(a_bar) * x",
        "return np.sqrt(a_bar) * x  # repro-lint: ignore[*]",
    )
    assert lint_sources({"src/repro/diffusion/bad.py": wildcard}) == []
    wrong = RPL001_BAD.replace(
        "return np.sqrt(a_bar) * x",
        "return np.sqrt(a_bar) * x  # repro-lint: ignore[RPL005]",
    )
    assert len(lint_sources({"src/repro/diffusion/bad.py": wrong})) == 1


# RPL004 anchors on the `def` line, so an unprofiled entry point behind a
# decorator chain exercises the decorated-def suppression path end to end.
RPL004_DECORATED = """\
import functools


{comment}@functools.lru_cache(maxsize=1)
@functools.wraps(object)
def group_norm(x):
    return x
"""


def test_suppression_standalone_comment_skips_blank_lines():
    source = RPL001_BAD.replace(
        "    return np.sqrt(a_bar) * x",
        "    # repro-lint: ignore[RPL001]\n\n    # unrelated note\n\n"
        "    return np.sqrt(a_bar) * x",
    )
    assert lint_sources({"src/repro/diffusion/bad.py": source}) == []


def test_suppression_covers_decorated_def():
    bad = RPL004_DECORATED.format(comment="")
    findings = lint_sources({"src/repro/nn/functional.py": bad})
    assert [f.rule for f in findings] == ["RPL004"]
    assert findings[0].line == 6  # the `def` line, not the decorator line

    for comment in ("# repro-lint: ignore[RPL004]\n", "# repro-lint: ignore[*]\n"):
        shielded = RPL004_DECORATED.format(comment=comment)
        assert lint_sources({"src/repro/nn/functional.py": shielded}) == []


def test_baseline_key_is_line_free_but_rename_sensitive():
    findings = lint_sources({"src/repro/diffusion/bad.py": RPL001_BAD})
    key = findings[0].key
    # Edits above the finding shift lines but keep the key stable...
    shifted = "import math  # unrelated new line\n" + RPL001_BAD
    moved = lint_sources({"src/repro/diffusion/bad.py": shifted})
    assert moved[0].line == findings[0].line + 1
    assert moved[0].key == key
    # ...while renaming the file changes the key: a baselined finding in a
    # renamed file resurfaces for re-triage instead of staying hidden.
    renamed = lint_sources({"src/repro/diffusion/renamed.py": RPL001_BAD})
    assert renamed[0].key != key
    assert renamed[0].key.replace("renamed.py", "bad.py") == key


# ---------------------------------------------------------------------------
# scopes: scripts/ + tests/helpers.py coverage with per-rule opt-in
# ---------------------------------------------------------------------------


def test_scope_of_paths():
    from repro.lint.framework import _scope_of

    assert _scope_of("src/repro/nn/functional.py") == "src"
    assert _scope_of("scripts/check_bench.py") == "scripts"
    assert _scope_of("tests/helpers.py") == "tests"


def test_scoped_rules_skip_out_of_scope_files():
    # RPL001 declares scope {src}: the same violating code in scripts/ or
    # tests/helpers.py (test-only idioms) must stay quiet.
    assert lint_sources({"scripts/bad.py": RPL001_BAD}) == []
    assert lint_sources({"tests/helpers.py": RPL001_BAD}) == []


def test_load_project_scope_selection(tmp_path):
    from repro.lint import load_project

    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "scripts").mkdir()
    (tmp_path / "tests").mkdir()
    (tmp_path / "src" / "repro" / "mod.py").write_text("x = 1\n")
    (tmp_path / "scripts" / "tool.py").write_text("y = 2\n")
    (tmp_path / "tests" / "helpers.py").write_text("z = 3\n")
    (tmp_path / "tests" / "test_mod.py").write_text("bad = 4\n")

    everything = load_project(tmp_path)
    assert set(everything.files) == {
        "src/repro/mod.py",
        "scripts/tool.py",
        "tests/helpers.py",  # test *modules* are never loaded
    }
    assert everything.files["scripts/tool.py"].scope == "scripts"
    src_only = load_project(tmp_path, scopes=["src"])
    assert set(src_only.files) == {"src/repro/mod.py"}


def test_cli_scope_knob(tmp_path, capsys):
    root = _write_tmp_repo(tmp_path)
    assert lint_main(["--root", str(root), "--scope", "scripts,tests"]) == 0
    capsys.readouterr()
    assert lint_main(["--root", str(root), "--scope", "src"]) == 1
    capsys.readouterr()
    assert lint_main(["--root", str(root), "--scope", "bogus"]) == 2
    assert "unknown scope" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------


def test_sarif_document_shape():
    from repro.lint.sarif import findings_to_sarif

    checkers = default_checkers()
    findings = lint_sources({"src/repro/diffusion/bad.py": RPL001_BAD})
    baseline = {findings[0].key}
    doc = findings_to_sarif(findings, checkers, baseline)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert rule_ids == [f"RPL{n:03d}" for n in range(1, 12)]
    result = run["results"][0]
    assert result["ruleId"] == "RPL001"
    assert result["baselineState"] == "unchanged"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/diffusion/bad.py"
    assert location["region"]["startLine"] == findings[0].line
    # Without the baseline the same finding surfaces as new.
    fresh = findings_to_sarif(findings, checkers, None)
    assert fresh["runs"][0]["results"][0]["baselineState"] == "new"


def test_cli_sarif_outputs(tmp_path, capsys):
    root = _write_tmp_repo(tmp_path)
    sarif_path = tmp_path / "findings.sarif"
    assert lint_main(["--root", str(root), "--sarif", str(sarif_path)]) == 1
    payload = json.loads(sarif_path.read_text())
    assert payload["runs"][0]["results"][0]["ruleId"] == "RPL001"
    capsys.readouterr()
    assert lint_main(["--root", str(root), "--format", "sarif"]) == 1
    stdout_doc = json.loads(capsys.readouterr().out)
    assert stdout_doc["version"] == "2.1.0"


# ---------------------------------------------------------------------------
# time budget
# ---------------------------------------------------------------------------


def test_cli_time_budget(tmp_path, capsys):
    root = _write_tmp_repo(tmp_path, source="x = 1\n")
    assert lint_main(["--root", str(root), "--time-budget", "120"]) == 0
    capsys.readouterr()
    # An absurdly small budget trips exit code 3 even on a clean tree.
    assert lint_main(["--root", str(root), "--time-budget", "0"]) == 3
    assert "time budget exceeded" in capsys.readouterr().err


def _write_tmp_repo(tmp_path, source=RPL001_BAD):
    target = tmp_path / "src" / "repro" / "diffusion" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(source)
    return tmp_path


def test_cli_exit_codes_and_json(tmp_path, capsys):
    root = _write_tmp_repo(tmp_path)
    report = tmp_path / "findings.json"
    assert lint_main(["--root", str(root), "--json", str(report)]) == 1
    payload = json.loads(report.read_text())
    assert payload[0]["rule"] == "RPL001"
    assert payload[0]["path"] == "src/repro/diffusion/bad.py"
    out = capsys.readouterr().out
    assert "RPL001" in out


def test_cli_baseline_accepts_known_findings(tmp_path, capsys):
    root = _write_tmp_repo(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert lint_main(["--root", str(root), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert lint_main(["--root", str(root), "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out
    # A fresh violation still fails against the old baseline.
    extra = root / "src" / "repro" / "diffusion" / "worse.py"
    extra.write_text(RPL001_BAD)
    assert lint_main(["--root", str(root), "--baseline", str(baseline)]) == 1


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for number in range(1, 12):
        assert f"RPL{number:03d}" in out
    # --list-rules also advertises each rule's scopes.
    assert "[src]" in out
    assert "src,tests" in out or "tests" in out


def test_repro_cli_forwards_lint(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["lint", "--list-rules"]) == 0
    assert "RPL001" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# RPL011 - quantized GEMMs must go through the backend dispatch
# ---------------------------------------------------------------------------

RPL011_BAD = """\
import numpy as np


def qk_scores(qq, dq, prev_k):
    s_int = qq @ prev_k
    s_int += np.matmul(dq, prev_k)
    s_int += np.einsum("bhtd,bhsd->bhts", dq, prev_k)
    return s_int
"""

RPL011_CLEAN = """\
import numpy as np

from repro.nn import backends


def qk_scores(qq, dq, prev_k, x, weight):
    bk = backends.active()
    s_int = bk.matmul(qq, prev_k)          # dispatched: fine
    s_int += bk.matmul(dq, prev_k)
    mixed = x @ weight                     # unquantized operands: fine
    probs = np.matmul(mixed, weight)       # unquantized np.matmul: fine
    return s_int + probs
"""

RPL011_SCALAR = """\
def blend(other):
    q_gain = 0.5
    return q_gain @ other
"""


def test_rpl011_flags_raw_quantized_gemms():
    findings = lint_sources({"src/repro/quant/bad_gemm.py": RPL011_BAD})
    assert [f.rule for f in findings] == ["RPL011"] * 3
    assert [f.line for f in findings] == [5, 6, 7]
    assert "backend" in findings[0].message


def test_rpl011_clean_twin_is_quiet():
    assert lint_sources({"src/repro/quant/good_gemm.py": RPL011_CLEAN}) == []


def test_rpl011_backends_package_is_exempt():
    # The backend implementations ARE the dispatch target.
    assert lint_sources({"src/repro/nn/backends/custom.py": RPL011_BAD}) == []


def test_rpl011_out_of_scope_dirs_are_quiet():
    assert lint_sources({"src/repro/workloads/bad_gemm.py": RPL011_BAD}) == []


def test_rpl011_dataflow_clears_scalar_operands():
    # A provably-scalar float knob reusing a quantized-sounding name is not
    # a GEMM; the dataflow refinement keeps the rule quiet.
    assert lint_sources({"src/repro/quant/scalar.py": RPL011_SCALAR}) == []


def test_rpl011_suppression():
    shielded = RPL011_BAD.replace(
        "    s_int = qq @ prev_k",
        "    s_int = qq @ prev_k  # repro-lint: ignore[RPL011]",
    )
    findings = lint_sources({"src/repro/quant/bad_gemm.py": shielded})
    assert [f.line for f in findings] == [6, 7]


# ---------------------------------------------------------------------------
# end to end: the repo itself is clean under all eleven checkers
# ---------------------------------------------------------------------------


def test_repo_is_clean():
    assert len(default_checkers()) == 11
    findings, new = run_lint(REPO_ROOT)
    assert findings == [], "\n".join(str(f) for f in findings)
    assert new == []


def test_checker_classes_cover_eleven_rules():
    from repro.lint.checkers import BackendDispatchChecker
    from repro.lint.dataflow import (
        DtypeFlowChecker,
        LayoutFlowChecker,
        RngStreamChecker,
        SessionLifecycleChecker,
    )

    rules = {
        DtypePromotionChecker.rule,
        TemporalStateRegistryChecker.rule,
        SpecCacheKeyChecker.rule,
        ProfilerPhaseChecker.rule,
        GemmLayoutChecker.rule,
        SwallowedExceptionChecker.rule,
        DtypeFlowChecker.rule,
        LayoutFlowChecker.rule,
        RngStreamChecker.rule,
        SessionLifecycleChecker.rule,
        BackendDispatchChecker.rule,
    }
    assert rules == {f"RPL{n:03d}" for n in range(1, 12)}
    assert {c.rule for c in default_checkers()} == rules
