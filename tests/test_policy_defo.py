"""Unit tests for policy lowering and the Defo decision machinery."""

import pytest

from repro.core import ExecutionMode, RichTrace, run_defo, run_ideal
from repro.core.policy import lower_dense, lower_spatial, lower_temporal
from repro.core.bitwidth import BitWidthStats
from repro.core.trace import RichLayerStep


class StubHardware:
    """Cycle model: compute from stats, memory from bytes; max() combined.

    compute = macs * (low + 2*high) / throughput ; memory = bytes / bw
    """

    def __init__(self, throughput=1000.0, bw=10.0):
        self.throughput = throughput
        self.bw = bw

    def layer_cycles(self, step):
        class R:
            pass

        stats = step.stats
        if step.mode is ExecutionMode.DENSE:
            compute = 2.0 * step.macs / self.throughput
        else:
            compute = (
                step.macs
                * step.sub_ops
                * (stats.low_frac + 2 * stats.high_frac)
                / self.throughput
            )
        r = R()
        r.cycles = max(compute, step.bytes_total / self.bw)
        return r


def rich_step(step_index, name, zero=60, low=30, high=10, temporal=True,
              macs=1000, in_elems=10, out_elems=10, kind="conv"):
    total = zero + low + high
    t_stats = BitWidthStats(total=total, zero=zero, low=low, high=high)
    return RichLayerStep(
        step_index=step_index,
        layer_name=name,
        kind=kind,
        macs=macs,
        in_elems=in_elems,
        out_elems=out_elems,
        weight_elems=5,
        data_elems=total,
        stats_dense=BitWidthStats(total=total, zero=0, low=20, high=total - 20),
        stats_spatial=BitWidthStats(total=total, zero=10, low=30, high=total - 40),
        stats_temporal=t_stats if temporal else None,
        vpu_elems=out_elems,
    )


def build_trace(num_steps=4, compute_layer=True, memory_layer=True):
    """Two layers: 'fast' wins with temporal, 'heavy' is memory-bound."""
    trace = RichTrace()
    for s in range(num_steps):
        temporal = s > 0
        if compute_layer:
            trace.append(
                rich_step(s, "fast", temporal=temporal, macs=100_000,
                          in_elems=10, out_elems=10)
            )
        if memory_layer:
            trace.append(
                rich_step(s, "heavy", temporal=temporal, macs=100,
                          in_elems=5_000, out_elems=5_000)
            )
    return trace


def test_lower_dense_all_dense():
    trace = lower_dense(build_trace())
    assert all(s.mode is ExecutionMode.DENSE for s in trace)


def test_lower_spatial_all_spatial():
    trace = lower_spatial(build_trace())
    assert all(s.mode is ExecutionMode.SPATIAL for s in trace)


def test_lower_temporal_first_step_dense():
    trace = lower_temporal(build_trace())
    by_step = trace.by_step()
    assert all(s.mode is ExecutionMode.DENSE for s in by_step[0])
    assert all(s.mode is ExecutionMode.TEMPORAL for s in by_step[1])


def test_lower_temporal_attention_guard():
    trace = RichTrace()
    for s in range(2):
        trace.append(rich_step(s, "attn.qk", temporal=s > 0, kind="attn_qk"))
    lowered = lower_temporal(trace, attention_diff=False)
    assert all(s.mode is ExecutionMode.DENSE for s in lowered)


def test_defo_keeps_compute_layer_temporal():
    report = run_defo(build_trace(), StubHardware())
    assert report.decisions["fast"] is ExecutionMode.TEMPORAL
    assert report.decisions["heavy"] is ExecutionMode.DENSE
    assert report.changed_layers == ["heavy"]
    assert 0.0 < report.changed_fraction < 1.0


def test_defo_assigns_decision_to_later_steps():
    report = run_defo(build_trace(num_steps=5), StubHardware())
    for s in (2, 3, 4):
        assert report.assigned[("fast", s)] is ExecutionMode.TEMPORAL
        assert report.assigned[("heavy", s)] is ExecutionMode.DENSE


def test_defo_plus_uses_spatial_fallback():
    report = run_defo(build_trace(), StubHardware(), plus=True)
    assert report.plus
    assert report.decisions["heavy"] is ExecutionMode.SPATIAL
    first_steps = report.trace.by_step()[0]
    assert all(s.mode is ExecutionMode.SPATIAL for s in first_steps)


def test_defo_accuracy_perfect_on_stationary_trace():
    report = run_defo(build_trace(num_steps=6), StubHardware())
    assert report.accuracy == 1.0


def test_defo_requires_two_steps():
    with pytest.raises(ValueError):
        run_defo(build_trace(num_steps=1), StubHardware())


def test_dynamic_defo_switches_on_drift():
    """A layer whose temporal stats degrade mid-run gets switched off."""
    trace = RichTrace()
    for s in range(6):
        if s < 3:
            trace.append(rich_step(s, "drifty", temporal=s > 0,
                                   zero=80, low=15, high=5, macs=100_000))
        else:
            # Similarity collapses: everything becomes full bit-width and the
            # activation volume makes the extra state traffic dominate.
            trace.append(rich_step(s, "drifty", zero=0, low=0, high=100,
                                   macs=100_000, in_elems=5_000,
                                   out_elems=5_000))
    static = run_defo(trace, StubHardware())
    dynamic = run_defo(trace, StubHardware(), dynamic=True)
    assert static.decisions["drifty"] is ExecutionMode.TEMPORAL
    # Dynamic-Ditto must abandon temporal processing after the drift.
    last_step = max(s for (_, s) in dynamic.assigned)
    assert dynamic.assigned[("drifty", last_step)] is ExecutionMode.DENSE
    hw = StubHardware()
    static_cycles = sum(hw.layer_cycles(s).cycles for s in static.trace)
    dynamic_cycles = sum(hw.layer_cycles(s).cycles for s in dynamic.trace)
    assert dynamic_cycles < static_cycles


def test_ideal_at_least_as_good_as_defo():
    trace = build_trace(num_steps=6)
    hw = StubHardware()
    defo = run_defo(trace, hw)
    ideal = run_ideal(trace, hw)
    defo_cycles = sum(hw.layer_cycles(s).cycles for s in defo.trace)
    ideal_cycles = sum(hw.layer_cycles(s).cycles for s in ideal)
    assert ideal_cycles <= defo_cycles + 1e-9


def test_ideal_first_step_fallback():
    trace = build_trace()
    ideal = run_ideal(trace, StubHardware())
    assert all(s.mode is ExecutionMode.DENSE for s in ideal.by_step()[0])


def test_defo_summary_strings():
    report = run_defo(build_trace(), StubHardware())
    assert "Defo" in report.summary()
    plus = run_defo(build_trace(), StubHardware(), plus=True, dynamic=True)
    assert "Dynamic-Defo+" in plus.summary()
