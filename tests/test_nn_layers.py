"""Unit tests for the float layer modules."""

import numpy as np

from repro.nn import (
    AvgPool2d,
    Conv2d,
    Downsample,
    GELU,
    GroupNorm,
    Identity,
    LayerNorm,
    Linear,
    ModuleList,
    Sequential,
    SiLU,
    Softmax,
    Upsample,
)


def test_linear_shapes_and_bias(rng):
    layer = Linear(6, 4, rng=rng)
    out = layer(rng.normal(size=(3, 6)))
    assert out.shape == (3, 4)
    assert layer.bias is not None


def test_linear_no_bias(rng):
    layer = Linear(6, 4, bias=False, rng=rng)
    assert layer.bias is None
    np.testing.assert_allclose(layer(np.zeros((1, 6))), np.zeros((1, 4)))


def test_linear_batched_tokens(rng):
    layer = Linear(6, 4, rng=rng)
    out = layer(rng.normal(size=(2, 5, 6)))
    assert out.shape == (2, 5, 4)


def test_linear_is_marked_linear_op():
    assert Linear(2, 2).is_linear_op
    assert Conv2d(2, 2, 3).is_linear_op


def test_conv2d_shapes(rng):
    layer = Conv2d(3, 8, 3, padding=1, rng=rng)
    out = layer(rng.normal(size=(2, 3, 8, 8)))
    assert out.shape == (2, 8, 8, 8)


def test_conv2d_stride_halves(rng):
    layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
    out = layer(rng.normal(size=(1, 3, 8, 8)))
    assert out.shape == (1, 8, 4, 4)


def test_nonlinear_markers():
    for cls in (SiLU, GELU, Softmax, GroupNorm, LayerNorm):
        assert getattr(cls, "is_nonlinear", False), cls


def test_group_norm_module(rng):
    layer = GroupNorm(4, 8)
    out = layer(rng.normal(size=(2, 8, 4, 4)))
    assert out.shape == (2, 8, 4, 4)


def test_layer_norm_affine_flag():
    assert LayerNorm(8).weight is not None
    assert LayerNorm(8, affine=False).weight is None


def test_layer_norm_no_affine_forward(rng):
    out = LayerNorm(8, affine=False)(rng.normal(size=(2, 8)))
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)


def test_identity_passthrough(rng):
    x = rng.normal(size=(3, 3))
    assert Identity()(x) is x


def test_module_list_append_and_index():
    ml = ModuleList([Identity()])
    ml.append(SiLU())
    assert len(ml) == 2
    assert isinstance(ml[1], SiLU)
    assert len(list(iter(ml))) == 2


def test_module_list_registers_children():
    ml = ModuleList([Linear(2, 2), Linear(2, 2)])
    assert len(list(ml.named_parameters())) == 4


def test_avg_pool_module(rng):
    out = AvgPool2d(2)(rng.normal(size=(1, 2, 4, 4)))
    assert out.shape == (1, 2, 2, 2)


def test_upsample_doubles_resolution(rng):
    layer = Upsample(4, rng=rng)
    out = layer(rng.normal(size=(1, 4, 4, 4)))
    assert out.shape == (1, 4, 8, 8)


def test_downsample_halves_resolution(rng):
    layer = Downsample(4, rng=rng)
    out = layer(rng.normal(size=(1, 4, 8, 8)))
    assert out.shape == (1, 4, 4, 4)


def test_sequential_empty():
    seq = Sequential()
    x = np.ones((1, 2))
    np.testing.assert_array_equal(seq(x), x)


def test_weight_init_scale(rng):
    layer = Linear(100, 50, rng=rng)
    bound = 1.0 / np.sqrt(100)
    assert np.abs(layer.weight.data).max() <= bound + 1e-12
