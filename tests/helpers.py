"""Shared test helpers, importable from any test module.

Kept outside ``conftest.py`` so test modules can import them with a plain
absolute import (``from helpers import make_rich``) instead of the relative
imports that broke collection when the test directory is not a package.
"""

import numpy as np

from repro.core import DittoEngine, RichLayerStep
from repro.core.bitwidth import BitWidthStats
from repro.workloads.suite import BenchmarkSpec

__all__ = ["make_rich", "make_tiny_engine", "make_tiny_spec", "TINY_SUITE"]


def make_rich(
    step_index=0,
    name="layer",
    temporal=True,
    chained=False,
    producer="other",
    sub_ops=1,
):
    """A canned RichLayerStep with known bit-width compositions."""
    stats = BitWidthStats(total=100, zero=40, low=50, high=10)
    return RichLayerStep(
        step_index=step_index,
        layer_name=name,
        kind="conv",
        macs=10_000,
        in_elems=100,
        out_elems=200,
        weight_elems=50,
        data_elems=100,
        stats_dense=BitWidthStats(total=100, zero=5, low=35, high=60),
        stats_spatial=BitWidthStats(total=100, zero=10, low=40, high=50),
        stats_temporal=stats if temporal else None,
        sub_ops_temporal=sub_ops,
        vpu_elems=200,
        chained_input=chained,
        producer_kind=producer,
    )


def _tiny_unet(seed: int = 5, block_type: str = "attention"):
    """The miniature UNet shared by every tiny engine/spec in the suite."""
    from repro.models import UNet

    return UNet(
        in_channels=2,
        base_channels=8,
        channel_mults=(1, 2),
        num_res_blocks=1,
        attention_levels=(1,),
        block_type=block_type,
        rng=np.random.default_rng(seed),
    )


def make_tiny_engine(
    sampler: str = "ddim",
    num_steps: int = 4,
    block_type: str = "attention",
    calibrate: bool = False,
    seed: int = 5,
    backend=None,
):
    """A fast DittoEngine over a miniature UNet (for integration tests)."""
    return DittoEngine.from_model(
        _tiny_unet(seed, block_type),
        sampler_name=sampler,
        num_steps=num_steps,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        calibrate=calibrate,
        benchmark="tiny",
        backend=backend,
    )


# -- tiny benchmark specs for runtime tests --------------------------------
# Build functions are module-level so BenchmarkSpec objects pickle by
# reference into EngineRunner's worker processes.

def _build_tiny_unet_a():
    return _tiny_unet(seed=5)


def _build_tiny_unet_b():
    return _tiny_unet(seed=7)


def _no_conditioning():
    return None


def make_tiny_spec(name="tinyA", num_steps=3, builder=_build_tiny_unet_a):
    return BenchmarkSpec(
        name=name,
        description="miniature UNet for runtime tests",
        dataset="synthetic",
        sampler="ddim",
        num_steps=num_steps,
        paper_steps=num_steps,
        sample_shape=(2, 8, 8),
        build_model=builder,
        build_conditioning=_no_conditioning,
    )


TINY_SUITE = (
    make_tiny_spec("tinyA", num_steps=3, builder=_build_tiny_unet_a),
    make_tiny_spec("tinyB", num_steps=4, builder=_build_tiny_unet_b),
)
