"""Tests for the CI perf-regression gate (``scripts/check_bench.py``).

The gate must fail (exit 1) on a synthetic slowdown beyond the tolerance
and pass (exit 0) on equal or faster records - the property the perf-smoke
CI job relies on.  The script is run through ``main(argv)`` via import, so
these tests exercise exactly what CI executes.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "check_bench.py"


@pytest.fixture(scope="module")
def check_bench():
    spec = importlib.util.spec_from_file_location("check_bench", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _record(cold_total=1.0, cold_build=0.4, cold_run=0.6, warm=0.001,
            speed=None, phases=None):
    sized = {
        "cold_build_s": cold_build,
        "cold_run_s": cold_run,
        "cold_total_s": cold_total,
        "warm_load_s": warm,
    }
    if phases is not None:
        sized["phases"] = phases
    return {
        "schema": 3,
        "host": {} if speed is None else {"speed_index_s": speed},
        "benchmarks": {
            "DDPM": {
                "by_batch_size": {
                    "1": sized,
                }
            }
        },
    }


def _write(tmp_path, name, record):
    path = tmp_path / name
    path.write_text(json.dumps(record))
    return str(path)


def test_gate_passes_on_identical_records(tmp_path, check_bench, capsys):
    base = _write(tmp_path, "base.json", _record())
    fresh = _write(tmp_path, "fresh.json", _record())
    assert check_bench.main([fresh, "--baseline", base]) == 0
    assert "OK" in capsys.readouterr().out


def test_gate_fails_on_synthetic_slowdown(tmp_path, check_bench, capsys):
    base = _write(tmp_path, "base.json", _record())
    slow = _write(
        tmp_path, "slow.json",
        _record(cold_total=1.6, cold_build=0.64, cold_run=0.96),
    )
    assert check_bench.main([slow, "--baseline", base, "--tol", "0.25"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out
    assert "FAIL" in out


def test_gate_tolerance_env_override(tmp_path, check_bench, monkeypatch):
    base = _write(tmp_path, "base.json", _record())
    slow = _write(
        tmp_path, "slow.json",
        _record(cold_total=1.6, cold_build=0.64, cold_run=0.96),
    )
    monkeypatch.setenv("REPRO_BENCH_TOL", "1.0")
    assert check_bench.main([slow, "--baseline", base]) == 0
    # Explicit --tol wins over the environment.
    assert check_bench.main([slow, "--baseline", base, "--tol", "0.1"]) == 1


def test_gate_ignores_sub_min_delta_jitter(tmp_path, check_bench):
    # The warm cache load is sub-millisecond: a 3x blip is absolute noise
    # and must not trip the relative gate.
    base = _write(tmp_path, "base.json", _record(warm=0.0004))
    fresh = _write(tmp_path, "fresh.json", _record(warm=0.0012))
    assert check_bench.main([fresh, "--baseline", base]) == 0
    # ...unless the caller insists on a zero absolute slack.
    assert (
        check_bench.main([fresh, "--baseline", base, "--min-delta", "0"]) == 1
    )


def test_gate_speedups_and_new_entries_pass(tmp_path, check_bench, capsys):
    base = _write(tmp_path, "base.json", _record())
    fresh_record = _record(cold_total=0.5, cold_build=0.2, cold_run=0.3)
    fresh_record["benchmarks"]["SDM"] = {
        "by_batch_size": {"4": {"cold_total_s": 9.9}}
    }
    fresh = _write(tmp_path, "fresh.json", fresh_record)
    assert check_bench.main([fresh, "--baseline", base]) == 0


def test_gate_warns_on_missing_entries(tmp_path, check_bench, capsys):
    base = _write(tmp_path, "base.json", _record())
    fresh_record = _record()
    del fresh_record["benchmarks"]["DDPM"]["by_batch_size"]["1"]["warm_load_s"]
    fresh = _write(tmp_path, "fresh.json", fresh_record)
    assert check_bench.main([fresh, "--baseline", base]) == 0
    assert "missing from fresh record" in capsys.readouterr().out


def test_gate_normalizes_by_host_speed_index(tmp_path, check_bench, capsys):
    """A 2x slower machine measuring 2x timings is NOT a regression once
    both records carry the host speed probe - and a genuine slowdown still
    fails after normalization."""
    base = _write(tmp_path, "base.json", _record(speed=0.03))
    slow_host = _write(
        tmp_path, "slow_host.json",
        _record(cold_total=2.0, cold_build=0.8, cold_run=1.2, speed=0.06),
    )
    assert check_bench.main([slow_host, "--baseline", base]) == 0
    assert "host speed ratio 2.000" in capsys.readouterr().out
    # Raw comparison (opt-out) still sees the 2x wall clock.
    assert (
        check_bench.main([slow_host, "--baseline", base, "--no-normalize"])
        == 1
    )
    # A real 2x regression on an identical-speed host keeps failing.
    real_slow = _write(
        tmp_path, "real_slow.json",
        _record(cold_total=2.0, cold_build=0.8, cold_run=1.2, speed=0.03),
    )
    assert check_bench.main([real_slow, "--baseline", base]) == 1


def test_gate_falls_back_to_raw_without_speed_probe(tmp_path, check_bench, capsys):
    base = _write(tmp_path, "base.json", _record(speed=0.03))
    fresh = _write(tmp_path, "fresh.json", _record())  # no probe
    assert check_bench.main([fresh, "--baseline", base]) == 0
    assert "raw wall clock" in capsys.readouterr().out


def test_gate_errors_on_unreadable_records(tmp_path, check_bench):
    fresh = _write(tmp_path, "fresh.json", _record())
    assert check_bench.main([fresh, "--baseline", "/nonexistent.json"]) == 2
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    assert check_bench.main([str(empty), "--baseline", str(empty)]) == 2


def test_gate_against_committed_baseline(check_bench, capsys):
    """The committed BENCH_PR10.json compared to itself passes - the shape the
    perf-smoke job consumes is exactly what `repro bench` wrote."""
    baseline = str(Path(__file__).resolve().parents[1] / "BENCH_PR10.json")
    assert check_bench.main([baseline, "--baseline", baseline]) == 0
    assert "OK" in capsys.readouterr().out


# -- per-phase gating (schema 3) ---------------------------------------------

def test_build_win_cannot_mask_run_regression(tmp_path, check_bench, capsys):
    """A big build-phase speedup plus a run-phase regression keeps the total
    inside the tolerance - the per-phase gate must still fail on the run."""
    base = _write(tmp_path, "base.json", _record())
    fresh = _write(
        tmp_path, "fresh.json",
        # build 0.4 -> 0.15 (win), run 0.6 -> 0.95 (+58%); total 1.0 -> 1.1
        # stays under the 25% total tolerance.
        _record(cold_total=1.1, cold_build=0.15, cold_run=0.95),
    )
    assert check_bench.main([fresh, "--baseline", base]) == 1
    out = capsys.readouterr().out
    assert "cold_run_s" in out and "REGRESSED" in out


def test_phase_bucket_regression_fails_alone(tmp_path, check_bench, capsys):
    """A regressed phases bucket fails even when every headline timing is
    flat (attribution the totals can never give)."""
    base = _write(
        tmp_path, "base.json",
        _record(phases={"build": {"calibration": 0.3}, "run": {"norm": 0.1}}),
    )
    fresh = _write(
        tmp_path, "fresh.json",
        _record(phases={"build": {"calibration": 0.3}, "run": {"norm": 0.4}}),
    )
    assert check_bench.main([fresh, "--baseline", base]) == 1
    out = capsys.readouterr().out
    assert "run.norm" in out and "REGRESSED" in out


def test_phase_buckets_respect_min_delta_and_normalization(
    tmp_path, check_bench
):
    # Tiny buckets ride the absolute slack like the warm load does...
    base = _write(
        tmp_path, "base.json",
        _record(speed=0.03, phases={"build": {"quantize": 0.004}}),
    )
    fresh = _write(
        tmp_path, "fresh.json",
        _record(speed=0.03, phases={"build": {"quantize": 0.012}}),
    )
    assert check_bench.main([fresh, "--baseline", base]) == 0
    # ...and large ones are compared in baseline-machine seconds.
    base = _write(
        tmp_path, "base2.json",
        _record(speed=0.03, phases={"run": {"im2col": 0.4}}),
    )
    slow_host = _write(
        tmp_path, "fresh2.json",
        _record(speed=0.06, phases={"run": {"im2col": 0.8}}),
    )
    assert check_bench.main([slow_host, "--baseline", base]) == 0
    same_host = _write(
        tmp_path, "fresh3.json",
        _record(speed=0.03, phases={"run": {"im2col": 0.8}}),
    )
    assert check_bench.main([same_host, "--baseline", base]) == 1


# -- plan-then-execute floor check (PR 9) ------------------------------------

def _plan_record(replay=0.10, plain=0.10, derive=0.3, **kwargs):
    record = _record(**kwargs)
    sized = record["benchmarks"]["DDPM"]["by_batch_size"]["1"]
    sized["plan_derive_s"] = derive
    sized["plan_replay_run_s"] = replay
    sized["plain_run_s"] = plain
    return record


def test_plan_floor_passes_at_the_floor(tmp_path, check_bench, capsys):
    base = _write(tmp_path, "base.json", _plan_record())
    fresh = _write(tmp_path, "fresh.json", _plan_record())
    assert check_bench.main([fresh, "--baseline", base]) == 0
    out = capsys.readouterr().out
    assert "plan floor" in out and "plan-floor check(s) passed" in out


def test_plan_floor_fails_above_tolerance(tmp_path, check_bench, capsys):
    # Replay 2x the plain floor, well past 15% and the 50 ms slack.
    base = _write(tmp_path, "base.json", _plan_record())
    fresh = _write(tmp_path, "fresh.json", _plan_record(replay=0.20, plain=0.10))
    assert check_bench.main([fresh, "--baseline", base]) == 1
    out = capsys.readouterr().out
    assert "ABOVE FLOOR" in out and "plain-forward floor" in out


def test_plan_floor_respects_min_delta_and_env_tol(tmp_path, check_bench,
                                                   monkeypatch):
    # A 2x blip on a tiny run rides the absolute slack...
    base = _write(tmp_path, "base.json", _plan_record(replay=0.002, plain=0.001))
    fresh = base
    assert check_bench.main([fresh, "--baseline", base]) == 0
    # ...and REPRO_PLAN_FLOOR_TOL loosens the relative gate.
    slow = _write(tmp_path, "slow.json", _plan_record(replay=0.20, plain=0.10))
    monkeypatch.setenv("REPRO_PLAN_FLOOR_TOL", "1.5")
    assert check_bench.main([slow, "--baseline", slow]) == 0
    # Explicit --plan-floor-tol wins over the environment.
    assert check_bench.main(
        [slow, "--baseline", slow, "--plan-floor-tol", "0.15"]
    ) == 1


def test_plan_floor_is_within_record_not_vs_baseline(tmp_path, check_bench):
    """The floor check reads only the fresh record: a baseline without plan
    fields never blocks it, and baseline plan timings gate cross-record via
    the ordinary metric comparison (plan_replay_run_s is a gated metric)."""
    base = _write(tmp_path, "base.json", _record())  # pre-PR9 baseline
    fresh = _write(tmp_path, "fresh.json", _plan_record(replay=0.20, plain=0.10))
    assert check_bench.main([fresh, "--baseline", base]) == 1
    base_plan = _write(tmp_path, "base2.json", _plan_record(replay=0.05))
    slow_replay = _write(
        tmp_path, "fresh2.json", _plan_record(replay=0.11, plain=0.10)
    )
    # Replay regressed 0.05 -> 0.11 vs baseline (>25% and >50 ms) even though
    # it sits within 15% of its own plain floor.
    assert check_bench.main([slow_replay, "--baseline", base_plan]) == 1


# -- stride-2 im2col parity check (PR 10) ------------------------------------

def _parity_record(s1=0.2, s1_elems=1000.0, s2=0.2, s2_elems=1000.0, **kwargs):
    record = _record(**kwargs)
    sized = record["benchmarks"]["DDPM"]["by_batch_size"]["1"]
    sized.setdefault("phases", {})["run"] = {
        "im2col_s1": s1, "im2col_s1_elems": s1_elems,
        "im2col_s2": s2, "im2col_s2_elems": s2_elems,
    }
    return record


def test_im2col_parity_passes_at_equal_rates(tmp_path, check_bench, capsys):
    rec = _write(tmp_path, "rec.json", _parity_record())
    assert check_bench.main([rec, "--baseline", rec]) == 0
    out = capsys.readouterr().out
    assert "im2col parity" in out and "im2col-parity check(s) passed" in out


def test_im2col_parity_fails_beyond_tolerance(tmp_path, check_bench, capsys):
    # Same element count, 3x the seconds: the stride-2 per-element rate is
    # 3x stride-1, past the default within-2x tolerance.
    rec = _write(tmp_path, "rec.json", _parity_record(s2=0.6))
    assert check_bench.main([rec, "--baseline", rec]) == 1
    out = capsys.readouterr().out
    assert "OFF PARITY" in out and "FAIL" in out


def test_im2col_parity_is_per_element_not_per_second(tmp_path, check_bench):
    """3x the wall clock over 4x the elements is a parity *win*: only the
    per-element gather rate is gated, never the bucket totals (those are
    covered by the ordinary cross-record phase gate)."""
    rec = _write(
        tmp_path, "rec.json", _parity_record(s2=0.6, s2_elems=4000.0)
    )
    assert check_bench.main([rec, "--baseline", rec]) == 0


def test_im2col_parity_tol_flag_and_env(tmp_path, check_bench, monkeypatch):
    rec = _write(tmp_path, "rec.json", _parity_record(s2=0.6))
    monkeypatch.setenv("REPRO_IM2COL_TOL", "3.0")
    assert check_bench.main([rec, "--baseline", rec]) == 0
    # Explicit --im2col-parity-tol wins over the environment.
    assert check_bench.main(
        [rec, "--baseline", rec, "--im2col-parity-tol", "0.5"]
    ) == 1


def test_im2col_parity_skips_tiny_buckets_and_missing_fields(
    tmp_path, check_bench
):
    # Buckets under the parity signal floor (5 ms default) are per-call
    # overhead, not gather throughput.
    tiny = _write(
        tmp_path, "tiny.json", _parity_record(s1=0.002, s2=0.006)
    )
    assert check_bench.main([tiny, "--baseline", tiny]) == 0
    # Lowering the floor re-engages the check (rate ratio 3x here).
    assert check_bench.main(
        [tiny, "--baseline", tiny, "--im2col-min-seconds", "0.001"]
    ) == 1
    # Records without the stride sub-buckets (pre-PR10) never trip the check.
    plain = _write(
        tmp_path, "plain.json",
        _record(phases={"run": {"im2col": 0.4}}),
    )
    assert check_bench.main([plain, "--baseline", plain]) == 0


def test_elems_counters_are_not_gated_as_timings(tmp_path, check_bench):
    """The *_elems buckets are deterministic element counts, not seconds:
    a fresh record unfolding 10x the elements must not read as a 10x phase
    regression (and must never be speed-normalized)."""
    base = _write(tmp_path, "base.json", _parity_record(speed=0.03))
    fresh = _write(
        tmp_path, "fresh.json",
        _parity_record(
            s1_elems=10000.0, s2_elems=10000.0, s1=2.0, s2=2.0, speed=0.03
        ),
    )
    # The seconds buckets regressed 10x and fail; the elems growth itself
    # is reported nowhere in the regression list.
    assert check_bench.main([fresh, "--baseline", base]) == 1
    # Elems-only growth with flat seconds passes cleanly.
    fresh_flat = _write(
        tmp_path, "fresh_flat.json",
        _parity_record(s1_elems=10000.0, s2_elems=10000.0, speed=0.03),
    )
    assert check_bench.main([fresh_flat, "--baseline", base]) == 0


def test_phaseless_records_still_compare(tmp_path, check_bench):
    """Pre-schema-3 records (no phases dict) flow through the gate; a fresh
    record growing new phase buckets never fails, and a baseline bucket
    missing from the fresh record only warns."""
    base = _write(tmp_path, "base.json", _record())
    fresh = _write(
        tmp_path, "fresh.json",
        _record(phases={"run": {"norm": 0.1}}),
    )
    assert check_bench.main([fresh, "--baseline", base]) == 0
    assert check_bench.main([base, "--baseline", fresh]) == 0
