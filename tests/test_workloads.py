"""Unit tests for datasets, prompts, and the Table I suite definition."""

import numpy as np
import pytest

from repro.workloads import (
    COCO_STYLE_PROMPTS,
    DATASETS,
    SUITE,
    benchmark_names,
    sample_prompts,
    synthetic_images,
    synthetic_video,
)


def test_suite_has_all_seven_benchmarks():
    assert benchmark_names() == ["DDPM", "BED", "CHUR", "IMG", "SDM", "DiT", "Latte"]


def test_suite_samplers_match_table_i():
    assert SUITE["DDPM"].sampler == "ddim"
    assert SUITE["SDM"].sampler == "plms"
    assert all(SUITE[n].sampler == "ddim" for n in ("BED", "CHUR", "IMG", "DiT", "Latte"))


def test_suite_paper_step_counts():
    expected = {"DDPM": 100, "BED": 200, "CHUR": 200, "IMG": 20,
                "SDM": 50, "DiT": 250, "Latte": 20}
    for name, steps in expected.items():
        assert SUITE[name].paper_steps == steps


def test_suite_step_ordering_preserved():
    """Scaled steps preserve the paper's relative ordering extremes."""
    scaled = {n: SUITE[n].num_steps for n in SUITE}
    assert scaled["DiT"] == max(scaled.values())
    assert scaled["DDPM"] <= SUITE["DDPM"].paper_steps


def test_conditioning_builders():
    assert SUITE["DDPM"].build_conditioning() is None
    img_cond = SUITE["IMG"].build_conditioning()
    assert img_cond["context"].ndim == 3
    sdm_cond = SUITE["SDM"].build_conditioning()
    assert sdm_cond["context"].shape[1] == 8  # token count
    assert "y" in SUITE["DiT"].build_conditioning()


def test_models_buildable_and_match_shapes():
    for name in ("DDPM", "DiT"):
        spec = SUITE[name]
        model = spec.build_model()
        cond = spec.build_conditioning() or {}
        x = np.random.default_rng(0).standard_normal((1,) + spec.sample_shape)
        out = model(x, np.array([5.0]), **cond)
        assert out.shape == x.shape


def test_video_flag_only_latte():
    assert SUITE["Latte"].is_video
    assert all(not SUITE[n].is_video for n in SUITE if n != "Latte")


def test_synthetic_images_properties():
    imgs = synthetic_images("cifar10", 8, seed=3)
    assert imgs.shape == (8, 3, 16, 16)
    assert np.abs(imgs).max() <= 1.0
    # Deterministic per seed.
    np.testing.assert_array_equal(imgs, synthetic_images("cifar10", 8, seed=3))
    assert not np.allclose(imgs, synthetic_images("cifar10", 8, seed=4))


def test_synthetic_images_are_spatially_smooth():
    """Unlike white noise, neighbouring pixels must correlate."""
    imgs = synthetic_images("lsun_bedroom", 4, seed=0)
    corr = np.mean(imgs[..., :-1] * imgs[..., 1:]) / np.mean(imgs ** 2)
    assert corr > 0.5


def test_synthetic_video_shape_and_drift():
    clips = synthetic_video("ucf101", 2, seed=1)
    assert clips.shape == (2, 4, 3, 32, 32)
    # Adjacent frames are similar but not identical.
    f0, f1 = clips[0, 0], clips[0, 1]
    assert not np.array_equal(f0, f1)
    cos = np.sum(f0 * f1) / (np.linalg.norm(f0) * np.linalg.norm(f1))
    assert cos > 0.7


def test_video_dataset_guards():
    with pytest.raises(ValueError):
        synthetic_images("ucf101", 2)
    with pytest.raises(ValueError):
        synthetic_video("cifar10", 2)


def test_prompts_cycle_and_lead_with_paper_example():
    assert "vase" in COCO_STYLE_PROMPTS[0]
    many = sample_prompts(len(COCO_STYLE_PROMPTS) + 2)
    assert many[0] == many[len(COCO_STYLE_PROMPTS)]
    with pytest.raises(ValueError):
        sample_prompts(-1)


def test_dataset_registry_shapes():
    assert DATASETS["cifar10"].image_shape == (3, 16, 16)
    assert DATASETS["ucf101"].is_video
    assert DATASETS["imagenet"].num_classes == 10
