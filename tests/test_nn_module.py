"""Unit tests for the Module/Parameter registry and hooks."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential, SiLU


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))

    def forward(self, x):
        return x @ self.weight.data


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.a = Leaf()
        self.b = Leaf()

    def forward(self, x):
        return self.b(self.a(x))


def test_parameter_registration():
    leaf = Leaf()
    names = dict(leaf.named_parameters())
    assert list(names) == ["weight"]
    assert names["weight"].shape == (2, 2)


def test_nested_parameter_names():
    tree = Tree()
    names = [n for n, _ in tree.named_parameters()]
    assert names == ["a.weight", "b.weight"]


def test_named_modules_includes_root_and_children():
    tree = Tree()
    names = [n for n, _ in tree.named_modules()]
    assert names == ["", "a", "b"]


def test_num_parameters():
    assert Tree().num_parameters() == 8


def test_children_iteration():
    tree = Tree()
    assert len(list(tree.children())) == 2


def test_forward_hook_fires_and_removes():
    leaf = Leaf()
    seen = []
    remove = leaf.register_forward_hook(lambda m, i, o: seen.append(o.copy()))
    x = np.ones((1, 2))
    leaf(x)
    assert len(seen) == 1
    np.testing.assert_allclose(seen[0], x @ leaf.weight.data)
    remove()
    leaf(x)
    assert len(seen) == 1


def test_clear_forward_hooks():
    leaf = Leaf()
    leaf.register_forward_hook(lambda m, i, o: None)
    leaf.clear_forward_hooks()
    assert leaf._forward_hooks == []


def test_forward_not_implemented():
    with pytest.raises(NotImplementedError):
        Module()(np.zeros(1))


def test_apply_visits_all_modules():
    tree = Tree()
    visited = []
    tree.apply(lambda m: visited.append(type(m).__name__))
    assert visited == ["Tree", "Leaf", "Leaf"]


def test_sequential_order_and_len():
    seq = Sequential(Linear(4, 8), SiLU(), Linear(8, 2))
    assert len(seq) == 3
    out = seq(np.zeros((1, 4)))
    assert out.shape == (1, 2)


def test_register_module_replaces_attribute():
    tree = Tree()
    new_leaf = Leaf()
    tree.register_module("a", new_leaf)
    assert tree.a is new_leaf
    assert tree._modules["a"] is new_leaf
