"""Per-phase bench breakdown: the profiler and the schema-3 record shape.

``repro bench`` must attribute cold wall clock to phases (build:
calibration / trajectory / quantize / norm / im2col; run: norm / im2col)
and report *medians across repeats* for every headline and phase timing -
the statistic ``scripts/check_bench.py`` gates on.
"""

import statistics
import time

import numpy as np

from repro import profiling
from repro.bench import bench_benchmark
from repro.nn import functional as F


# -- the ambient profiler ----------------------------------------------------

def test_phase_accumulates_only_when_active():
    with profiling.profile() as prof:
        with profiling.phase("alpha"):
            time.sleep(0.002)
        with profiling.phase("alpha"):
            pass
        profiling.record("beta", 1.5)
    assert prof.buckets["alpha"] >= 0.002
    assert prof.buckets["beta"] == 1.5
    # Outside any profile() the hooks are no-ops, not errors.
    with profiling.phase("gamma"):
        pass
    profiling.record("gamma", 1.0)
    assert profiling.active() is None


def test_profile_nesting_restores_previous():
    with profiling.profile() as outer:
        profiling.record("x", 1.0)
        with profiling.profile() as inner:
            profiling.record("x", 2.0)
        assert profiling.active() is outer
        profiling.record("x", 0.5)
    assert outer.buckets["x"] == 1.5
    assert inner.buckets["x"] == 2.0


def test_hot_kernels_report_into_active_profiler():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 8, 8, 8))
    with profiling.profile() as prof:
        F.group_norm(x, 4)
        F.layer_norm(rng.standard_normal((2, 4, 16)))
        F.im2col_t(x, 3, 1, 1)
        F.im2col(x, 3, 1, 1)
    assert prof.buckets["norm"] > 0.0
    assert prof.buckets["im2col"] > 0.0
    # im2col_t additionally attributes its cost per stride class (PR 10):
    # seconds plus an element counter, feeding the check_bench parity gate.
    assert prof.buckets["im2col_s1"] > 0.0
    assert prof.buckets["im2col_s1_elems"] == float(
        F.im2col_t(x, 3, 1, 1)[0].size
    )
    snap = prof.snapshot()
    assert set(snap) == {"norm", "im2col", "im2col_s1", "im2col_s1_elems"}


def test_im2col_t_stride2_reports_its_own_bucket():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((1, 4, 9, 9))
    with profiling.profile() as prof:
        cols_t, _ = F.im2col_t(x, 3, 2, 1)
    assert prof.buckets["im2col_s2"] > 0.0
    assert prof.buckets["im2col_s2_elems"] == float(cols_t.size)
    assert "im2col_s1" not in prof.buckets


# -- the bench record --------------------------------------------------------

def test_bench_records_per_phase_medians(tmp_path):
    record = bench_benchmark(
        "DDPM", repeats=3, num_steps=2, cache_dir=str(tmp_path)
    )
    runs = record["cold_runs"]
    assert len(runs) == 3
    # Headline cold timings are medians across the repeats, not best-of-N.
    assert record["cold_build_s"] == round(
        statistics.median(r["build_s"] for r in runs), 4
    )
    assert record["cold_run_s"] == round(
        statistics.median(r["run_s"] for r in runs), 4
    )
    assert record["cold_total_s"] == round(
        statistics.median(r["total_s"] for r in runs), 4
    )
    assert record["cold_best_total_s"] == min(r["total_s"] for r in runs)
    # Every repeat carries its own phase breakdown...
    for run in runs:
        assert set(run["phases"]) == {"build", "run"}
        assert {"calibration", "trajectory", "quantize"} <= set(
            run["phases"]["build"]
        )
        assert "norm" in run["phases"]["run"]
        assert "im2col" in run["phases"]["run"]
        # The trajectory is timed inside the calibration phase.
        assert (
            run["phases"]["build"]["trajectory"]
            <= run["phases"]["build"]["calibration"] + 1e-6
        )
    # ...and the record-level phases are the per-bucket medians.
    for section in ("build", "run"):
        for bucket, value in record["phases"][section].items():
            per_repeat = [r["phases"][section].get(bucket, 0.0) for r in runs]
            assert value == round(statistics.median(per_repeat), 4)


def test_bench_records_plan_timings(tmp_path):
    """PR 9: each by_batch_size record carries the plan-then-execute fields
    as plain record fields - never as new ``phases`` sections, which stay
    exactly ``{build, run}`` (the shape check_bench gates per bucket)."""
    record = bench_benchmark(
        "DDPM", repeats=2, num_steps=2, cache_dir=str(tmp_path),
        batch_sizes=(1,),
    )
    sized = record["by_batch_size"]["1"]
    for field in ("plan_derive_s", "plan_replay_run_s", "plain_run_s"):
        assert sized[field] > 0.0
        assert record[field] == sized[field]  # headline mirrors batch 1
    # The derivation includes a full instrumented run; the replay does not.
    assert sized["plan_derive_s"] > sized["plan_replay_run_s"]
    for run in record["cold_runs"]:
        assert set(run["phases"]) == {"build", "run"}


def test_bench_respects_calibration_dtype(tmp_path):
    """The escape hatch reaches the engine: a float64 bench run must not
    collide with the float32 default in the result cache."""
    f32 = bench_benchmark(
        "DDPM", repeats=1, num_steps=2, cache_dir=str(tmp_path)
    )
    f64 = bench_benchmark(
        "DDPM", repeats=1, num_steps=2, cache_dir=str(tmp_path),
        calibration_dtype="float64",
    )
    # Distinct cache entries were written (two pickles on disk).
    entries = list(tmp_path.rglob("*"))
    assert len([p for p in entries if p.is_file()]) >= 2
    # Scales differ in ulps, so the drift canary may differ in the last
    # digits but the records must be structurally identical.
    assert f32["records"] == f64["records"]
    assert f32["steps"] == f64["steps"]
