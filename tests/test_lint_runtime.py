"""Tests for the opt-in runtime numeric sanitizer (``repro.lint.runtime``)."""

import numpy as np
import pytest

from repro.lint import runtime as lint_runtime
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.quant.calibration import calibration_precision


@pytest.fixture
def sanitizer():
    with lint_runtime.sanitized():
        yield lint_runtime
    assert not lint_runtime.installed()


class _FakePipeline:
    """The minimal surface ``calibration_precision`` touches."""

    def __init__(self):
        self.conditioning = {}
        self.uncond_conditioning = {}
        self._cond_cache = {}

    def predict_noise(self, x, t):
        return x


def test_float64_trips_inside_f32_region(sanitizer):
    x64 = np.ones((2, 3))
    w32 = np.ones((4, 3), dtype=np.float32)
    with sanitizer.calibration_region(np.float32):
        with pytest.raises(sanitizer.SanitizerError, match="float64"):
            F.linear(x64, w32)


def test_float64_fine_outside_region(sanitizer):
    out = F.linear(np.ones((2, 3)), np.ones((4, 3)))
    assert out.dtype == np.float64


def test_float32_fine_inside_region(sanitizer):
    with sanitizer.calibration_region(np.float32):
        out = F.linear(
            np.ones((2, 3), dtype=np.float32), np.ones((4, 3), dtype=np.float32)
        )
    assert out.dtype == np.float32


def test_norm_kernels_are_guarded(sanitizer):
    x64 = np.ones((1, 4, 2, 2))
    with sanitizer.calibration_region(np.float32):
        with pytest.raises(sanitizer.SanitizerError):
            F.group_norm(x64, 2)
        with pytest.raises(sanitizer.SanitizerError):
            F.layer_norm(np.ones((2, 8)))


def test_noncontiguous_cols_trip(sanitizer):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 2, 4, 4))
    w = rng.standard_normal((3, 2, 3, 3))
    cols, out_hw = F.im2col(x, 3, 1, 1)
    bad = np.asfortranarray(cols)
    with pytest.raises(sanitizer.SanitizerError, match="non-C-contiguous"):
        F.conv2d_from_cols(bad, w, out_hw)
    # The contiguous original passes and matches the direct convolution.
    good = F.conv2d_from_cols(cols, w, out_hw)
    np.testing.assert_allclose(good, F.conv2d(x, w, None, 1, 1))


def test_install_uninstall_restores_kernels():
    originals = {name: getattr(F, name) for name in ("linear", "conv2d", "group_norm")}
    lint_runtime.install()
    try:
        assert F.linear is not originals["linear"]
        lint_runtime.install()  # idempotent
    finally:
        lint_runtime.uninstall()
    for name, fn in originals.items():
        assert getattr(F, name) is fn
    lint_runtime.uninstall()  # idempotent on the uninstalled state too


def test_enabled_env_parsing(monkeypatch):
    for value, expected in [("1", True), ("true", True), ("", False), ("0", False)]:
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert lint_runtime.enabled() is expected
    monkeypatch.delenv("REPRO_SANITIZE")
    assert lint_runtime.enabled() is False


def test_calibration_precision_marks_region():
    model = Linear(4, 4)
    pipeline = _FakePipeline()
    assert lint_runtime.active_calibration_dtype() is None
    with calibration_precision(model, pipeline, np.float32):
        assert lint_runtime.active_calibration_dtype() == np.dtype(np.float32)
    assert lint_runtime.active_calibration_dtype() is None


def test_calibration_precision_float64_is_unmarked():
    # The float64 escape hatch is a no-op and must not open a region.
    with calibration_precision(Linear(4, 4), _FakePipeline(), np.float64):
        assert lint_runtime.active_calibration_dtype() is None


def test_sanitized_calibration_region_catches_injected_float64(sanitizer):
    model = Linear(4, 4)
    pipeline = _FakePipeline()
    with calibration_precision(model, pipeline, np.float32):
        # The context cast the weights; float32 activations flow cleanly...
        out = model(np.ones((2, 4), dtype=np.float32))
        assert out.dtype == np.float32
        # ...but a float64 array sneaking to any kernel is caught.
        with pytest.raises(sanitizer.SanitizerError):
            model(np.ones((2, 4)))
