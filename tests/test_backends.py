"""PR 10 compute-backend tests.

Covers the dispatch contract end to end:

* the blocked ``im2col_t`` stride-2 path matches a naive patch gather bit
  for bit, in the reference ``(N, C*k*k, positions)`` layout, C-contiguous,
  through the ``out=`` buffer-reuse gate;
* integer-valued GEMMs are *bit-identical* across backends (the exact-f32
  license: any accumulation order yields the same bits under the gate);
* unavailable/unknown backends degrade to ``reference`` with a recorded
  reason, while the cache keys keep the requested name - no aliasing across
  backends, pinned for ``engine_key`` / ``engine_build_key`` / ``plan_key``
  and the spec signature (including the ``REPRO_BACKEND`` env axis);
* ``estimate_row_footprint`` counts backend-private scratch.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import ExecutionMode
from repro.defaults import resolve_backend
from repro.nn import backends, functional as F
from repro.nn.backends import ReferenceBackend, register_backend
from repro.quant.qlayers import QConv2d, QLinear
from repro.runtime.hashing import (
    engine_build_key,
    engine_key,
    plan_key,
    spec_signature,
)
from repro.runtime.serving import estimate_row_footprint

from helpers import make_tiny_engine, make_tiny_spec

BACKENDS = list(backends.available_backends())


def naive_cols_t(x, kernel, stride, padding):
    """Patch gather by explicit loops, transposed to the im2col_t layout."""
    if padding:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols = np.empty((n, c * kernel * kernel, out_h * out_w), dtype=x.dtype)
    for b in range(n):
        pos = 0
        for i in range(out_h):
            for j in range(out_w):
                patch = x[
                    b,
                    :,
                    i * stride : i * stride + kernel,
                    j * stride : j * stride + kernel,
                ]
                cols[b, :, pos] = patch.ravel()
                pos += 1
    return cols, (out_h, out_w)


# -- blocked stride-2 im2col_t ----------------------------------------------

@pytest.mark.parametrize("kernel,padding", [(3, 0), (3, 1), (1, 0)])
@pytest.mark.parametrize("stride", [1, 2])
def test_im2col_t_matches_naive_gather(kernel, padding, stride):
    rng = np.random.default_rng(3)
    x = rng.standard_normal((2, 3, 9, 9)).astype(np.float32)
    got, out_hw = F.im2col_t(x, kernel, stride, padding)
    ref, ref_hw = naive_cols_t(x, kernel, stride, padding)
    assert out_hw == ref_hw
    assert got.shape == ref.shape
    assert got.flags["C_CONTIGUOUS"]
    np.testing.assert_array_equal(got, ref)


def test_im2col_t_stride2_equals_stride1_on_decimated_positions():
    """Stride 2 selects exactly the even-position columns of stride 1."""
    rng = np.random.default_rng(4)
    x = rng.standard_normal((1, 2, 8, 8))
    s1, (h1, w1) = F.im2col_t(x, 3, 1, 1)
    s2, (h2, w2) = F.im2col_t(x, 3, 2, 1)
    grid = s1.reshape(1, -1, h1, w1)[:, :, ::2, ::2]
    np.testing.assert_array_equal(s2, grid.reshape(1, -1, h2 * w2))


def test_im2col_t_stride2_out_buffer_gate():
    """``out=`` reuse must fill the caller's buffer on the blocked path."""
    rng = np.random.default_rng(5)
    x = rng.standard_normal((2, 3, 9, 9))
    ref, (out_h, out_w) = naive_cols_t(x, 3, 2, 1)
    buf = np.full((2, 27, out_h * out_w), np.nan)
    got, _ = F.im2col_t(x, 3, 2, 1, out=buf)
    assert got is buf
    np.testing.assert_array_equal(buf, ref)
    # A mismatched buffer is a caller bug (stale per-layer buffer after a
    # shape change) and must raise rather than silently fall back.
    wrong = np.empty((2, 27, out_h * out_w + 1))
    with pytest.raises(ValueError, match="out buffer"):
        F.im2col_t(x, 3, 2, 1, out=wrong)


# -- cross-backend integer bit-equality --------------------------------------

def _int_valued(rng, shape, lo=-8, hi=8, dtype=np.float32):
    return rng.integers(lo, hi, size=shape).astype(dtype)


@pytest.mark.parametrize("backend", BACKENDS)
def test_integer_gemms_bit_identical_to_reference(backend):
    rng = np.random.default_rng(7)
    ref = backends.get_backend("reference")
    bk = backends.get_backend(backend)
    # conv GEMM: (out_c, dot) @ (N, dot, P)
    cols_t = _int_valued(rng, (3, 18, 25))
    weight = _int_valued(rng, (4, 18))
    np.testing.assert_array_equal(
        bk.conv2d_from_cols_t(cols_t, weight, (5, 5)),
        ref.conv2d_from_cols_t(cols_t, weight, (5, 5)),
    )
    out = bk.conv2d_from_cols_t(cols_t, weight, (5, 5))
    assert out.shape == (3, 4, 5, 5) and out.flags["C_CONTIGUOUS"]
    # linear over stacked leading axes
    x = _int_valued(rng, (2, 6, 10))
    w = _int_valued(rng, (4, 10))
    np.testing.assert_array_equal(bk.linear(x, w), ref.linear(x, w))
    # the attention activation x activation product
    a = _int_valued(rng, (2, 2, 5, 6))
    b = _int_valued(rng, (2, 2, 6, 5))
    np.testing.assert_array_equal(bk.matmul(a, b), ref.matmul(a, b))


def test_blas_gather_path_handles_noncontiguous_cols():
    """n > 1 non-contiguous cols_t must route through the gather, bit-exact."""
    rng = np.random.default_rng(8)
    base = _int_valued(rng, (3, 25, 18))
    cols_t = base.transpose(0, 2, 1)  # (3, 18, 25), not C-contiguous
    assert not cols_t.flags["C_CONTIGUOUS"]
    weight = _int_valued(rng, (4, 18))
    ref = backends.get_backend("reference")
    blas = backends.get_backend("blas-batched")
    np.testing.assert_array_equal(
        blas.conv2d_from_cols_t(cols_t, weight, (5, 5)),
        ref.conv2d_from_cols_t(np.ascontiguousarray(cols_t), weight, (5, 5)),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_qlayer_outputs_bit_identical_across_backends(backend):
    """Dense + temporal quantized layers stay exact under every backend."""
    rng = np.random.default_rng(9)
    w_conv = rng.standard_normal((4, 2, 3, 3))
    w_lin = rng.standard_normal((5, 12))
    x0 = rng.standard_normal((2, 2, 6, 6))
    x1 = x0 + 0.05 * rng.standard_normal(x0.shape)
    v0 = rng.standard_normal((2, 12))
    v1 = v0 + 0.05 * rng.standard_normal(v0.shape)

    def run(name):
        conv = QConv2d(w_conv, None, padding=1)
        lin = QLinear(w_lin, None)
        outs = []
        with backends.use_backend(name):
            for mode, (xc, xl) in [
                (ExecutionMode.DENSE, (x0, v0)),
                (ExecutionMode.TEMPORAL, (x1, v1)),
            ]:
                conv.mode = lin.mode = mode
                outs.append((conv(xc), lin(xl)))
        return outs

    for (conv_ref, lin_ref), (conv_bk, lin_bk) in zip(run("reference"), run(backend)):
        np.testing.assert_array_equal(conv_bk, conv_ref)
        np.testing.assert_array_equal(lin_bk, lin_ref)


# -- probe fallback -----------------------------------------------------------

class _BrokenBackend(ReferenceBackend):
    name = "test-broken"

    @classmethod
    def probe(cls):
        return False, "simulated hardware missing"


def test_unavailable_backend_degrades_with_reason():
    register_backend("test-broken", _BrokenBackend)
    effective, reason = backends.probe_backend("test-broken")
    assert effective == "reference"
    assert "simulated hardware missing" in reason
    assert "test-broken" not in backends.available_backends()
    assert isinstance(backends.get_backend("test-broken"), ReferenceBackend)


def test_unknown_backend_degrades_with_reason():
    effective, reason = backends.probe_backend("no-such-backend")
    assert effective == "reference"
    assert "unknown" in reason


def test_engine_keeps_requested_name_on_fallback():
    register_backend("test-broken", _BrokenBackend)
    engine = make_tiny_engine(num_steps=2, backend="test-broken")
    assert engine.backend == "test-broken"  # the cache-key axis
    assert engine.effective_backend == "reference"
    assert "simulated hardware missing" in engine.backend_fallback_reason
    native = make_tiny_engine(num_steps=2)
    assert native.backend_fallback_reason is None


def test_use_backend_is_scoped():
    before = backends.active()
    with backends.use_backend("blas-batched") as bk:
        assert backends.active() is bk
        assert bk.name == "blas-batched"
    assert backends.active() is before


# -- the cache-key axis -------------------------------------------------------

def test_backend_is_a_cache_key_axis():
    spec = make_tiny_spec("tinyKeys", num_steps=2)
    for key_fn in (engine_key, engine_build_key, plan_key):
        ref = key_fn(spec)
        blas = key_fn(spec, backend="blas-batched")
        assert ref != blas
        # Explicitly requesting the default matches the implicit default.
        assert key_fn(spec, backend="reference") == ref
    # A degraded backend still keys under its *requested* name: requesting a
    # registered-but-unavailable backend never aliases a reference entry.
    register_backend("test-broken", _BrokenBackend)
    assert engine_key(spec, backend="test-broken") != engine_key(spec)


def test_spec_pin_and_env_reach_the_signature(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    spec = make_tiny_spec("tinySig", num_steps=2)
    assert spec_signature(spec)["backend"] == "reference"
    pinned = dataclasses.replace(spec, backend="blas-batched")
    assert spec_signature(pinned)["backend"] == "blas-batched"
    monkeypatch.setenv("REPRO_BACKEND", "blas-batched")
    assert resolve_backend(None, None) == "blas-batched"
    assert spec_signature(spec)["backend"] == "blas-batched"
    # spec pin beats env; explicit override beats both.
    repinned = dataclasses.replace(spec, backend="reference")
    assert spec_signature(repinned)["backend"] == "reference"
    assert resolve_backend(repinned, "blas-batched") == "blas-batched"


# -- footprint accounting -----------------------------------------------------

class _ScratchHeavyBackend(ReferenceBackend):
    name = "test-scratch"

    def scratch_nbytes(self):
        return 2 * 2**20


def test_row_footprint_counts_backend_scratch():
    register_backend("test-scratch", _ScratchHeavyBackend)
    plain = estimate_row_footprint(make_tiny_engine(num_steps=2))
    heavy = estimate_row_footprint(
        make_tiny_engine(num_steps=2, backend="test-scratch")
    )
    # Same kernels, same pool traffic: the only delta is the backend-private
    # scratch, amortized over the 2 probed rows.
    assert heavy == plain + 2**20
