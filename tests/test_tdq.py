"""Unit tests for timestep-clustered quantization (Q-Diffusion/TDQ synergy)."""

import numpy as np
import pytest

from repro.core import DittoEngine
from repro.core.modes import ExecutionMode
from repro.quant import (
    TimestepClusteredQuantizer,
    cluster_bounds,
    set_active_step,
)
from repro.quant.calibration import calibrate_model_clustered
from repro.nn import Linear
from repro.quant.qlayers import QLinear

from helpers import make_tiny_engine


@pytest.fixture(autouse=True)
def clear_active_step():
    yield
    set_active_step(None)


def test_cluster_bounds_partition():
    # Ceil-style edges: larger windows first, as the docstring promises.
    assert cluster_bounds(10, 3) == [0, 4, 7]  # windows of 4, 3, 3 steps
    assert cluster_bounds(10, 1) == [0]
    assert cluster_bounds(4, 8) == [0, 1, 2, 3]  # capped at num_steps
    with pytest.raises(ValueError):
        cluster_bounds(10, 0)


def test_cluster_bounds_boundaries():
    assert cluster_bounds(9, 3) == [0, 3, 6]  # exact division: even windows
    assert cluster_bounds(7, 2) == [0, 4]  # odd split: first window larger
    assert cluster_bounds(1, 1) == [0]
    assert cluster_bounds(1, 5) == [0]  # num_clusters > num_steps collapses
    assert cluster_bounds(5, 5) == [0, 1, 2, 3, 4]  # one step per cluster
    assert cluster_bounds(0, 3) == []  # empty trajectory: no windows
    # Starts are strictly increasing and inside range: no empty window ever.
    for steps in range(1, 30):
        for clusters in range(1, 12):
            bounds = cluster_bounds(steps, clusters)
            assert bounds[0] == 0
            assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))
            assert bounds[-1] < steps
            assert len(bounds) == min(clusters, steps)


def test_cluster_of_mapping():
    quant = TimestepClusteredQuantizer(8, num_clusters=3)
    quant.configure(9)
    assert [quant.cluster_of(i) for i in range(9)] == [0, 0, 0, 1, 1, 1, 2, 2, 2]


def test_per_cluster_scales():
    quant = TimestepClusteredQuantizer(8, num_clusters=2)
    quant.configure(4)
    quant.observe_step(np.array([1.0]), 0)  # cluster 0 peak 1.0
    quant.observe_step(np.array([10.0]), 3)  # cluster 1 peak 10.0
    scales = quant.freeze_clusters()
    assert scales[0] == pytest.approx(1.0 / 127.0)
    assert scales[1] == pytest.approx(10.0 / 127.0)


def test_scale_follows_active_step():
    quant = TimestepClusteredQuantizer(8, num_clusters=2)
    quant.configure(4)
    quant.observe_step(np.array([1.0]), 0)
    quant.observe_step(np.array([10.0]), 3)
    quant.freeze_clusters()
    set_active_step(0)
    q_small = quant.quantize(np.array([1.0]))
    assert q_small[0] == 127.0
    set_active_step(3)
    q_large = quant.quantize(np.array([1.0]))
    assert q_large[0] == pytest.approx(13.0)  # 1.0 / (10/127) rounded


def test_empty_cluster_falls_back_to_widest():
    quant = TimestepClusteredQuantizer(8, num_clusters=3)
    quant.configure(6)
    quant.observe_step(np.array([5.0]), 0)
    scales = quant.freeze_clusters()
    assert scales[1] == scales[0] == scales[2]


def test_qlinear_dense_fallback_at_cluster_boundary(rng):
    """Crossing a scale boundary must invalidate the temporal state -
    yet the outputs stay exact (dense re-run, not an approximation)."""
    fp = Linear(8, 4, rng=rng)
    q = QLinear.from_float(fp)
    quant = TimestepClusteredQuantizer(8, num_clusters=2)
    quant.configure(4)
    x0 = rng.normal(size=(1, 8))
    quant.observe_step(x0, 0)
    quant.observe_step(3.0 * x0, 3)
    quant.freeze_clusters()
    q.input_quant = quant
    q.mode = ExecutionMode.TEMPORAL

    q_ref = QLinear.from_float(fp)
    q_ref.input_quant = TimestepClusteredQuantizer(8, num_clusters=2)
    q_ref.input_quant.configure(4)
    q_ref.input_quant.observe_step(x0, 0)
    q_ref.input_quant.observe_step(3.0 * x0, 3)
    q_ref.input_quant.freeze_clusters()

    history = [x0, x0 + 0.01, x0 + 0.02, x0 + 0.03]
    for step, xt in enumerate(history):
        set_active_step(step)
        out_temporal = q(xt)
        out_dense = q_ref(xt)
        np.testing.assert_array_equal(out_temporal, out_dense)


def test_clustered_calibration_collects_per_cluster(rng):
    from repro.nn import Conv2d, Module

    class Net(Module):
        def __init__(self):
            super().__init__()
            self.conv = Conv2d(2, 2, 3, padding=1, rng=np.random.default_rng(0))

        def forward(self, x):
            return self.conv(x)

    net = Net()

    def run():
        for step in range(4):
            set_active_step(step)
            net((step + 1.0) * np.ones((1, 2, 4, 4)))

    quantizers = calibrate_model_clustered(net, run, num_steps=4, num_clusters=2)
    quant = quantizers["conv"]
    # Cluster 0 saw peaks 1, 2; cluster 1 saw 3, 4.
    assert quant.scale_for_step(0) == pytest.approx(2.0 / 127.0)
    assert quant.scale_for_step(3) == pytest.approx(4.0 / 127.0)


def test_engine_with_step_clusters_runs_and_falls_back():
    engine = make_tiny_engine(num_steps=6)
    baseline = engine.run(seed=2)

    from repro.models import UNet

    model = UNet(
        in_channels=2,
        base_channels=8,
        channel_mults=(1, 2),
        num_res_blocks=1,
        attention_levels=(1,),
        block_type="attention",
        rng=np.random.default_rng(5),
    )
    clustered_engine = DittoEngine.from_model(
        model,
        sampler_name="ddim",
        num_steps=6,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        step_clusters=3,
        benchmark="tiny-tdq",
    )
    assert clustered_engine.step_clusters == 3
    clustered = clustered_engine.run(seed=2)
    # Boundary steps re-run dense: more records without temporal stats.
    def dense_fallbacks(result):
        return sum(1 for s in result.rich_trace if s.stats_temporal is None)

    assert dense_fallbacks(clustered) > dense_fallbacks(baseline)
    # Outputs stay finite and in the same regime.
    assert np.isfinite(clustered.samples).all()
