"""Unit tests for DDIM / DDPM / PLMS samplers."""

import numpy as np
import pytest

from repro.diffusion import (
    DDIMSampler,
    DDPMSampler,
    DiffusionSchedule,
    PLMSSampler,
    make_sampler,
)


@pytest.fixture
def sched():
    return DiffusionSchedule(100)


def test_ddim_deterministic(sched, rng):
    sampler = DDIMSampler(sched, 10)
    x = rng.normal(size=(1, 2, 4, 4))
    eps = rng.normal(size=x.shape)
    a = sampler.step(eps, 0, x)
    b = sampler.step(eps, 0, x)
    np.testing.assert_array_equal(a, b)


def test_ddim_perfect_eps_recovers_x0(sched, rng):
    """If the model predicts the true noise, DDIM's final x is exactly x0."""
    sampler = DDIMSampler(sched, 10)
    x0 = rng.normal(size=(1, 2, 4, 4))
    t = int(sampler.timesteps[-1])  # last inference step jumps to a_bar=1
    a = sched.alpha_bar(t)
    eps = rng.normal(size=x0.shape)
    xt = np.sqrt(a) * x0 + np.sqrt(1 - a) * eps
    x_prev = sampler.step(eps, len(sampler.timesteps) - 1, xt)
    np.testing.assert_allclose(x_prev, x0, rtol=1e-10)


def test_ddim_eta_requires_rng(sched, rng):
    sampler = DDIMSampler(sched, 10, eta=0.5)
    x = rng.normal(size=(1, 2, 2, 2))
    with pytest.raises(ValueError):
        sampler.step(x, 0, x, rng=None)
    out = sampler.step(x, 0, x, rng=rng)
    assert out.shape == x.shape


def test_ddpm_requires_rng(sched, rng):
    sampler = DDPMSampler(sched, 10)
    x = rng.normal(size=(1, 2, 2, 2))
    with pytest.raises(ValueError):
        sampler.step(x, 0, x)


def test_ddpm_final_step_is_mean(sched, rng):
    """The jump to t=0 adds no noise: two rngs give identical results."""
    sampler = DDPMSampler(sched, 10)
    x = rng.normal(size=(1, 2, 2, 2))
    eps = rng.normal(size=x.shape)
    last = len(sampler.timesteps) - 1
    a = sampler.step(eps, last, x, rng=np.random.default_rng(1))
    b = sampler.step(eps, last, x, rng=np.random.default_rng(2))
    np.testing.assert_array_equal(a, b)


def test_plms_history_accumulates(sched, rng):
    sampler = PLMSSampler(sched, 10)
    x = rng.normal(size=(1, 2, 2, 2))
    for i in range(5):
        x = sampler.step(rng.normal(size=x.shape), i, x)
    assert len(sampler._history) == 4  # window caps at 4


def test_plms_reset_clears_history(sched, rng):
    sampler = PLMSSampler(sched, 10)
    sampler.step(rng.normal(size=(1, 2)), 0, rng.normal(size=(1, 2)))
    sampler.reset()
    assert len(sampler._history) == 0


def test_plms_extra_model_call_at_first_step(sched):
    sampler = PLMSSampler(sched, 10)
    assert sampler.model_calls_for_step(0) == 2
    assert sampler.model_calls_for_step(1) == 1


def test_plms_warmup_uses_model_fn(sched, rng):
    sampler = PLMSSampler(sched, 10)
    calls = []

    def fake_model(x, t):
        calls.append(t)
        return np.zeros_like(x)

    sampler.model_fn = fake_model
    x = rng.normal(size=(1, 2, 2, 2))
    sampler.step(rng.normal(size=x.shape), 0, x)
    assert len(calls) == 1  # the pseudo improved-Euler extra evaluation


def test_prev_timestep_chain(sched):
    sampler = DDIMSampler(sched, 4)
    steps = sampler.timesteps
    for i in range(len(steps) - 1):
        assert sampler.prev_timestep(i) == steps[i + 1]
    assert sampler.prev_timestep(len(steps) - 1) == -1


def test_make_sampler_factory(sched):
    assert isinstance(make_sampler("ddim", sched, 5), DDIMSampler)
    assert isinstance(make_sampler("ddpm", sched, 5), DDPMSampler)
    assert isinstance(make_sampler("plms", sched, 5), PLMSSampler)
    with pytest.raises(ValueError):
        make_sampler("euler", sched, 5)
