"""Integration tests: design points over a real engine trace."""

import pytest

from repro.hw import (
    FIG13_DESIGNS,
    FIG15_DESIGNS,
    FIG16_DESIGNS,
    FIG18_DESIGNS,
    DesignPoint,
    evaluate_design,
    evaluate_designs,
)


@pytest.fixture(scope="module")
def results(tiny_engine_result):
    return evaluate_designs(FIG13_DESIGNS, tiny_engine_result.rich_trace)


def test_all_fig13_designs_evaluate(results):
    assert set(results) == {"GPU", "ITC", "Diffy", "Cambricon-D", "Ditto", "Ditto+"}
    for result in results.values():
        assert result.report.total_cycles > 0
        assert result.report.total_energy_pj > 0


def test_defo_report_attached_only_for_defo_policies(results):
    assert results["Ditto"].defo is not None
    assert results["Ditto+"].defo is not None
    assert results["ITC"].defo is None
    assert results["Diffy"].defo is None


def test_accelerators_faster_than_gpu(results):
    gpu = results["GPU"].report.total_cycles
    for name in ("ITC", "Diffy", "Ditto", "Ditto+"):
        assert results[name].report.total_cycles < gpu


def test_ditto_beats_cambricon(results):
    assert (
        results["Ditto"].report.total_cycles
        < results["Cambricon-D"].report.total_cycles
    )


def test_temporal_designs_move_more_bytes(results):
    itc = results["ITC"].report.total_bytes
    assert results["Cambricon-D"].report.total_bytes > itc
    assert results["Ditto"].report.total_bytes >= itc
    # Defo keeps Ditto's traffic below naive Cambricon-D.
    assert (
        results["Ditto"].report.total_bytes
        <= results["Cambricon-D"].report.total_bytes
    )


def test_report_helpers(results):
    itc = results["ITC"].report
    ditto = results["Ditto"].report
    assert ditto.speedup_over(itc) == pytest.approx(
        itc.total_cycles / ditto.total_cycles
    )
    assert ditto.relative_memory_accesses(itc) == pytest.approx(
        ditto.total_bytes / itc.total_bytes
    )
    breakdown = ditto.energy_breakdown_pj()
    assert sum(breakdown.values()) == pytest.approx(ditto.total_energy_pj)
    assert "Ditto" in ditto.summary()


def test_cycles_by_step_covers_all_steps(results, tiny_engine_result):
    per_step = results["Ditto"].report.cycles_by_step()
    assert set(per_step) == set(range(tiny_engine_result.rich_trace.num_steps()))


def test_fig16_ablation_designs(tiny_engine_result):
    results = evaluate_designs(FIG16_DESIGNS, tiny_engine_result.rich_trace)
    assert set(results) == {
        "ITC", "DS", "DB", "DB&DS", "DB&DS&Attn", "Ditto", "Ditto+",
    }
    # DB&DS (both mechanisms) must out-compute DS and DB alone.
    for weaker in ("DS", "DB"):
        assert (
            results["DB&DS"].report.compute_cycles
            <= results[weaker].report.compute_cycles + 1e-6
        )
    # Defo reduces stalls relative to the naive all-temporal schedule.
    assert (
        results["Ditto"].report.stall_cycles
        <= results["DB&DS&Attn"].report.stall_cycles + 1e-6
    )


def test_fig18_ideal_upper_bounds_defo(tiny_engine_result):
    results = evaluate_designs(FIG18_DESIGNS, tiny_engine_result.rich_trace)
    assert (
        results["Ideal-Ditto"].report.total_cycles
        <= results["Ditto"].report.total_cycles + 1e-6
    )
    assert (
        results["Ideal-Ditto+"].report.total_cycles
        <= results["Ditto+"].report.total_cycles + 1e-6
    )


def test_fig15_software_techniques(tiny_engine_result):
    results = evaluate_designs(FIG15_DESIGNS, tiny_engine_result.rich_trace)
    # Attention difference processing must not hurt Cambricon-D.
    org = results["Org. Cam-D"].report.total_cycles
    attn = results["Cam-D & Attn. Diff."].report.total_cycles
    assert attn <= org * 1.05
    # Defo keeps Cambricon-D in the same regime (it may trade memory
    # savings for outlier-PE dense compute, per the paper's Fig. 15 text).
    defo = results["Cam-D & Attn. Diff. & Defo"].report.total_cycles
    assert defo <= attn * 1.2
    # Every Cambricon-D variant stays behind Ditto (paper Fig. 15 claim).
    ditto = results["Ditto"].report.total_cycles
    assert ditto < defo


def test_unknown_policy_rejected(tiny_engine_result):
    bad = DesignPoint("X", "Ditto", "mystery")
    with pytest.raises(ValueError):
        evaluate_design(bad, tiny_engine_result.rich_trace)


def test_dynamic_policy_runs(tiny_engine_result):
    point = DesignPoint("Dyn", "Ditto", "dynamic")
    result = evaluate_design(point, tiny_engine_result.rich_trace)
    assert result.defo is not None
    assert result.defo.dynamic
