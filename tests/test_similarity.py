"""Unit tests for the similarity / value-range analytics (Figs. 3-4)."""

import numpy as np
import pytest

from repro.core import (
    ActivationCapture,
    cosine,
    similarity_report,
    temporal_similarity,
    value_ranges,
)
from repro.core.similarity import _spatial_pairs
from repro.nn import Conv2d, Linear, Module, SiLU


def test_cosine_identical():
    x = np.array([1.0, 2.0, 3.0])
    assert cosine(x, x) == pytest.approx(1.0)


def test_cosine_orthogonal():
    assert cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)


def test_cosine_opposite():
    x = np.array([1.0, -2.0])
    assert cosine(x, -x) == pytest.approx(-1.0)


def test_cosine_zero_vectors():
    z = np.zeros(3)
    assert cosine(z, z) == 1.0
    assert cosine(z, np.ones(3)) == 0.0


def test_temporal_similarity_high_for_drift(rng):
    base = rng.normal(size=(1, 4, 8))
    history = {"layer": [base, base + 0.01 * rng.normal(size=base.shape)]}
    sims = temporal_similarity(history)
    assert sims["layer"][0] > 0.99


def test_temporal_similarity_skips_shape_changes(rng):
    history = {"layer": [rng.normal(size=(1, 4)), rng.normal(size=(2, 4))]}
    assert temporal_similarity(history) == {}


def test_spatial_pairs_smooth_vs_noise(rng):
    smooth = np.tile(rng.normal(size=(1, 8, 1, 1)), (1, 1, 6, 6))
    noisy = rng.normal(size=(1, 8, 6, 6))
    assert _spatial_pairs(smooth) == pytest.approx(1.0)
    assert _spatial_pairs(noisy) < 0.5


def test_spatial_pairs_token_input(rng):
    tokens = np.tile(rng.normal(size=(1, 1, 16)), (1, 5, 1))
    assert _spatial_pairs(tokens) == pytest.approx(1.0)


def test_spatial_pairs_single_row_is_nan(rng):
    assert np.isnan(_spatial_pairs(rng.normal(size=(1, 8))))


def test_value_ranges_ratio(rng):
    base = rng.normal(size=(1, 100))
    history = {"layer": [base, base + 0.01, base + 0.02]}
    ranges = value_ranges(history)["layer"]
    assert ranges["difference_range"] < ranges["activation_range"]
    assert ranges["ratio"] > 1.0


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.conv = Conv2d(2, 4, 3, padding=1, rng=rng)
        self.act = SiLU()
        self.fc = Linear(4, 4, rng=rng)

    def forward(self, x):
        h = self.act(self.conv(x)).mean(axis=(2, 3))
        return self.fc(h)


def test_activation_capture_collects_per_layer(rng):
    model = TwoLayer()
    with ActivationCapture(model) as capture:
        model(rng.normal(size=(1, 2, 6, 6)))
        model(rng.normal(size=(1, 2, 6, 6)))
    assert set(capture.activations) == {"conv", "fc"}
    assert len(capture.activations["conv"]) == 2


def test_capture_removes_hooks_on_exit(rng):
    model = TwoLayer()
    with ActivationCapture(model) as capture:
        model(rng.normal(size=(1, 2, 6, 6)))
    model(rng.normal(size=(1, 2, 6, 6)))
    assert len(capture.activations["conv"]) == 1


def test_similarity_report_aggregates(rng):
    model = TwoLayer()
    x = rng.normal(size=(1, 2, 6, 6))

    def run():
        model(x)
        model(x + 0.01 * rng.normal(size=x.shape))

    report = similarity_report("demo", model, run)
    assert report.avg_temporal > 0.9
    assert np.isfinite(report.avg_spatial)
    assert report.avg_range_ratio > 1.0
    assert "demo" in report.summary()
