"""Unit + property tests for the numpy kernels in repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


def naive_conv2d(x, w, bias=None, stride=1, padding=0):
    """Reference convolution via explicit loops."""
    n, c, h, wd = x.shape
    oc, ic, k, _ = w.shape
    assert c == ic
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (x.shape[2] - k) // stride + 1
    ow = (x.shape[3] - k) // stride + 1
    out = np.zeros((n, oc, oh, ow))
    for b in range(n):
        for o in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = x[b, :, i * stride : i * stride + k, j * stride : j * stride + k]
                    out[b, o, i, j] = np.sum(patch * w[o])
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out


def test_silu_matches_definition(rng):
    x = rng.normal(size=100)
    np.testing.assert_allclose(F.silu(x), x / (1 + np.exp(-x)), rtol=1e-12)


def test_silu_stable_for_large_values():
    out = F.silu(np.array([-1000.0, 1000.0]))
    assert np.isfinite(out).all()
    np.testing.assert_allclose(out, [0.0, 1000.0], atol=1e-6)


def test_gelu_reference_points():
    np.testing.assert_allclose(F.gelu(np.array([0.0])), [0.0], atol=1e-12)
    assert F.gelu(np.array([3.0]))[0] == pytest.approx(2.9964, abs=1e-3)
    assert F.gelu(np.array([-3.0]))[0] == pytest.approx(-0.0036, abs=1e-3)


def test_softmax_normalizes(rng):
    x = rng.normal(size=(3, 7))
    p = F.softmax(x)
    np.testing.assert_allclose(p.sum(axis=-1), np.ones(3), rtol=1e-12)
    assert (p > 0).all()


def test_softmax_shift_invariance(rng):
    x = rng.normal(size=(2, 5))
    np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0), rtol=1e-9)


def test_group_norm_zero_mean_unit_var(rng):
    x = rng.normal(2.0, 3.0, size=(2, 8, 4, 4))
    out = F.group_norm(x, num_groups=4)
    grouped = out.reshape(2, 4, 2, 4, 4)
    np.testing.assert_allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-10)
    np.testing.assert_allclose(grouped.var(axis=(2, 3, 4)), 1.0, rtol=1e-3)


def test_group_norm_affine(rng):
    x = rng.normal(size=(1, 4, 2, 2))
    w = np.full(4, 2.0)
    b = np.full(4, -1.0)
    plain = F.group_norm(x, 2)
    scaled = F.group_norm(x, 2, w, b)
    np.testing.assert_allclose(scaled, plain * 2.0 - 1.0, rtol=1e-12)


def test_group_norm_rejects_bad_groups():
    with pytest.raises(ValueError):
        F.group_norm(np.zeros((1, 6, 2, 2)), num_groups=4)


def test_layer_norm_normalizes_last_axis(rng):
    x = rng.normal(1.0, 5.0, size=(3, 4, 16))
    out = F.layer_norm(x)
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
    np.testing.assert_allclose(out.var(axis=-1), 1.0, rtol=1e-3)


@pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
def test_conv2d_matches_naive(rng, stride, padding):
    x = rng.normal(size=(2, 3, 6, 6))
    w = rng.normal(size=(4, 3, 3, 3))
    b = rng.normal(size=4)
    got = F.conv2d(x, w, b, stride=stride, padding=padding)
    want = naive_conv2d(x, w, b, stride=stride, padding=padding)
    np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-10)


def test_conv2d_1x1_is_channel_mix(rng):
    x = rng.normal(size=(1, 3, 4, 4))
    w = rng.normal(size=(5, 3, 1, 1))
    got = F.conv2d(x, w)
    want = np.einsum("oc,nchw->nohw", w[:, :, 0, 0], x)
    np.testing.assert_allclose(got, want, rtol=1e-10)


def test_im2col_row_order_is_output_raster(rng):
    x = rng.normal(size=(1, 2, 4, 4))
    cols, (oh, ow) = F.im2col(x, kernel=3, stride=1, padding=0)
    assert (oh, ow) == (2, 2)
    assert cols.shape == (1, 4, 18)
    # Row 0 must be the top-left window, channel-major.
    window = x[0, :, 0:3, 0:3].reshape(-1)
    np.testing.assert_allclose(cols[0, 0], window)


def test_im2col_integer_exactness():
    x = np.arange(32, dtype=np.float64).reshape(1, 2, 4, 4)
    cols, _ = F.im2col(x, 2)
    assert np.array_equal(cols, np.rint(cols))


def test_linear_matches_matmul(rng):
    x = rng.normal(size=(5, 7))
    w = rng.normal(size=(3, 7))
    b = rng.normal(size=3)
    np.testing.assert_allclose(F.linear(x, w, b), x @ w.T + b, rtol=1e-12)


def test_avg_pool2d(rng):
    x = rng.normal(size=(1, 2, 4, 4))
    out = F.avg_pool2d(x, 2)
    assert out.shape == (1, 2, 2, 2)
    np.testing.assert_allclose(out[0, 0, 0, 0], x[0, 0, :2, :2].mean())


def test_avg_pool2d_rejects_indivisible():
    with pytest.raises(ValueError):
        F.avg_pool2d(np.zeros((1, 1, 5, 4)), 2)


def test_upsample_nearest(rng):
    x = rng.normal(size=(1, 1, 2, 2))
    up = F.upsample_nearest(x, 2)
    assert up.shape == (1, 1, 4, 4)
    np.testing.assert_allclose(up[0, 0, :2, :2], np.full((2, 2), x[0, 0, 0, 0]))


def test_sinusoidal_embedding_shape_and_range():
    emb = F.sinusoidal_embedding(np.array([0, 10, 500]), 16)
    assert emb.shape == (3, 16)
    assert np.abs(emb).max() <= 1.0 + 1e-12


def test_sinusoidal_embedding_odd_dim():
    emb = F.sinusoidal_embedding(np.array([3]), 7)
    assert emb.shape == (1, 7)


def test_sinusoidal_embedding_distinguishes_timesteps():
    emb = F.sinusoidal_embedding(np.array([1, 2]), 32)
    assert not np.allclose(emb[0], emb[1])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 3),
    c=st.integers(1, 4),
    hw=st.integers(3, 8),
    k=st.sampled_from([1, 3]),
    seed=st.integers(0, 100),
)
def test_conv2d_property_matches_naive(n, c, hw, k, seed):
    rng = np.random.default_rng(seed)
    x = rng.integers(-8, 8, size=(n, c, hw, hw)).astype(np.float64)
    w = rng.integers(-8, 8, size=(2, c, k, k)).astype(np.float64)
    got = F.conv2d(x, w, padding=k // 2)
    want = naive_conv2d(x, w, padding=k // 2)
    np.testing.assert_array_equal(got, want)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_conv_linearity_property(seed):
    """conv(a) + conv(b) == conv(a + b): the distributive property Ditto uses."""
    rng = np.random.default_rng(seed)
    a = rng.integers(-100, 100, size=(1, 2, 5, 5)).astype(np.float64)
    b = rng.integers(-100, 100, size=(1, 2, 5, 5)).astype(np.float64)
    w = rng.integers(-100, 100, size=(3, 2, 3, 3)).astype(np.float64)
    lhs = F.conv2d(a, w, padding=1) + F.conv2d(b, w, padding=1)
    rhs = F.conv2d(a + b, w, padding=1)
    np.testing.assert_array_equal(lhs, rhs)


# -- blocked transposed im2col (PR 5) ----------------------------------------

@pytest.mark.parametrize(
    "kernel,stride,padding",
    [(3, 1, 1), (3, 1, 0), (1, 1, 0), (3, 2, 1), (2, 2, 0)],
)
def test_im2col_t_is_transposed_im2col(rng, kernel, stride, padding):
    """Column values are identical to im2col - only the layout transposes."""
    x = rng.normal(size=(2, 3, 9, 9))
    cols, hw = F.im2col(x.copy(), kernel, stride, padding)
    cols_t, hw_t = F.im2col_t(x.copy(), kernel, stride, padding)
    assert hw == hw_t
    np.testing.assert_array_equal(cols.transpose(0, 2, 1), cols_t)


def test_im2col_t_out_buffer_and_cast(rng):
    """A float32 out buffer receives the (exact-integer) patches in place."""
    x = rng.integers(-8, 8, size=(1, 2, 6, 6)).astype(np.float64)
    out = np.empty((1, 2 * 9, 36), dtype=np.float32)
    cols_t, _ = F.im2col_t(x, 3, 1, 1, out=out)
    assert cols_t is out
    ref, _ = F.im2col(x, 3, 1, 1)
    np.testing.assert_array_equal(ref.transpose(0, 2, 1), cols_t.astype(np.float64))


def test_im2col_t_pad_workspace_not_shared_across_padding_widths():
    """Two paddings with coinciding padded shapes must not share borders."""
    rng = np.random.default_rng(9)
    a = rng.standard_normal((1, 2, 32, 32))  # padded shape (1,2,34,34), p=1
    b = rng.standard_normal((1, 2, 30, 30))  # padded shape (1,2,34,34), p=2
    F.im2col_t(a, 3, 1, 1)  # dirty the p=1 workspace interior
    cols_t, _ = F.im2col_t(b, 3, 1, 2)
    ref = np.zeros((1, 2, 34, 34))
    ref[:, :, 2:32, 2:32] = b
    ref_cols_t, _ = F.im2col_t(ref, 3, 1, 0)
    np.testing.assert_array_equal(cols_t, ref_cols_t)


def test_conv2d_from_cols_t_matches_row_major(rng):
    x = rng.normal(size=(2, 3, 8, 8))
    w = rng.normal(size=(5, 3, 3, 3))
    bias = rng.normal(size=5)
    cols, hw = F.im2col(x, 3, 1, 1)
    want = F.conv2d_from_cols(cols, w, hw, bias)
    cols_t, _ = F.im2col_t(x, 3, 1, 1)
    got = F.conv2d_from_cols_t(cols_t, w, hw, bias)
    np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)
    # Pre-flattened weights are accepted too (the quantized conv caches them).
    got_flat = F.conv2d_from_cols_t(cols_t, w.reshape(5, -1), hw, bias)
    np.testing.assert_array_equal(got, got_flat)


def test_conv2d_emits_contiguous_nchw(rng):
    """The transposed GEMM path emits C-contiguous NCHW directly - the
    layout downstream fused reductions rely on being view-reshapable."""
    x = rng.normal(size=(1, 4, 6, 6))
    w = rng.normal(size=(8, 4, 3, 3))
    out = F.conv2d(x, w, padding=1)
    assert out.flags["C_CONTIGUOUS"]


def test_im2col_t_rejects_mis_shaped_out_buffer(rng):
    """A stale-shaped reusable buffer is a caller bug and must fail loudly,
    not silently degrade to a fresh allocation the owner never sees."""
    x = rng.normal(size=(1, 2, 6, 6))
    stale = np.empty((1, 2 * 9, 16), dtype=np.float64)  # wrong positions
    with pytest.raises(ValueError, match="out buffer"):
        F.im2col_t(x, 3, 1, 1, out=stale)
