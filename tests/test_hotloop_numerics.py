"""Error-analysis suite for the PR-5 hot-loop rewrites.

The fused single-pass GroupNorm/LayerNorm reductions and the float32
calibration fast path both change floating-point arithmetic on the float
(calibration) side of the system - summation order for the norms, working
precision for the trajectory.  Neither touches the quantized integer paths,
so the property that must hold is narrower than bit-exactness and is pinned
here with explicit, measured bounds:

* **Kernel equivalence** - the fused norms match the pre-PR-5 multi-pass
  reference to ~1e-12 relative on realistic activations (observed ~1e-15;
  the fused ``E[x^2] - mean^2`` variance loses ~``mean^2/var`` ulps to
  cancellation, irrelevant for normalized-activation statistics).
* **Scale invariance** - per-layer calibration scales across all seven
  Table I benchmarks move by < 1e-12 relative under the fused norms
  (observed <= 2e-15) and by < 5e-6 relative under float32 calibration
  (observed <= 7e-7).  Both are orders of magnitude below the 8-bit
  quantization resolution of ``1/127 ~ 7.9e-3`` - no integer grid can move.
* **End metrics** - samples from engines calibrated in float32 vs float64
  agree to < 1e-2 relative L1 (observed 7e-4 pixel-space, 1e-7 DiT); the
  residual is quantization rounding flips at scale boundaries, the same
  magnitude PR 3's batch-independent probe scales introduced.

This file is the documented waiver ISSUE 5 asks for: the float calibration
path is *not* bit-exact with PR 4, and these bounds are why that is safe.
"""

import numpy as np
import pytest

from repro.core import DittoEngine
from repro.diffusion import DiffusionSchedule, GenerationPipeline, make_sampler
from repro.nn import functional as F
from repro.nn.layers import Conv2d
from repro.quant.calibration import calibrate_model, calibration_precision
from repro.runtime.hashing import engine_key
from repro.workloads import SUITE, get_benchmark

BENCHMARKS = list(SUITE)

# Measured headroom: observed fused-vs-reference scale drift is <= 2e-15,
# f32-vs-f64 drift <= 7e-7 (3-step trajectories, every benchmark).  The
# asserted bounds leave ~3 orders of magnitude of slack below quantization
# resolution while still catching any real numerics regression.
NORM_SCALE_BOUND = 1e-12
F32_SCALE_BOUND = 5e-6
END_METRIC_BOUND = 1e-2


# -- pre-PR-5 reference implementations (multi-pass, centered variance) ------

def ref_group_norm(x, num_groups, weight=None, bias=None, eps=1e-5):
    n, c, h, w = x.shape
    grouped = x.reshape(n, num_groups, c // num_groups, h, w)
    mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
    centered = grouped - mean
    var = np.mean(centered * centered, axis=(2, 3, 4), keepdims=True)
    out = (centered / np.sqrt(var + eps)).reshape(n, c, h, w)
    if weight is not None:
        out = out * weight.reshape(1, c, 1, 1)
    if bias is not None:
        out = out + bias.reshape(1, c, 1, 1)
    return out


def ref_layer_norm(x, weight=None, bias=None, eps=1e-5):
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = np.mean(centered * centered, axis=-1, keepdims=True)
    out = centered / np.sqrt(var + eps)
    if weight is not None:
        out = out * weight
    if bias is not None:
        out = out + bias
    return out


# -- kernel equivalence ------------------------------------------------------

@pytest.mark.parametrize("offset", [0.0, 0.7, 100.0])
def test_group_norm_fused_matches_reference(offset):
    rng = np.random.default_rng(3)
    x = rng.standard_normal((3, 16, 8, 8)) * 2.5 + offset
    w = rng.standard_normal(16)
    b = rng.standard_normal(16)
    np.testing.assert_allclose(
        F.group_norm(x, 4, w, b), ref_group_norm(x, 4, w, b),
        rtol=1e-9, atol=1e-9,
    )
    np.testing.assert_allclose(
        F.group_norm(x, 8), ref_group_norm(x, 8), rtol=1e-9, atol=1e-9
    )


def test_group_norm_fused_handles_strided_views():
    """Non-contiguous inputs (e.g. transposed views) reduce identically."""
    rng = np.random.default_rng(4)
    base = rng.standard_normal((2, 6, 6, 16))
    x = base.transpose(0, 3, 1, 2)  # (2, 16, 6, 6), strided
    assert not x.flags["C_CONTIGUOUS"]
    w = rng.standard_normal(16)
    b = rng.standard_normal(16)
    np.testing.assert_allclose(
        F.group_norm(x, 4, w, b),
        ref_group_norm(np.ascontiguousarray(x), 4, w, b),
        rtol=1e-9, atol=1e-9,
    )


def test_group_norm_fused_float32_inputs():
    """The f32 calibration trajectory feeds f32 activations through here."""
    rng = np.random.default_rng(5)
    x = (rng.standard_normal((1, 16, 8, 8)) * 3).astype(np.float32)
    w = rng.standard_normal(16).astype(np.float32)
    b = rng.standard_normal(16).astype(np.float32)
    out = F.group_norm(x, 4, w, b)
    assert out.dtype == np.float32
    np.testing.assert_allclose(
        out, ref_group_norm(x, 4, w, b), rtol=2e-4, atol=2e-4
    )


def test_fused_norms_float32_high_mean_low_variance():
    """Cancellation stress: mean >> std in float32.

    A naive float32 ``E[x^2] - mean^2`` annihilates the variance here
    (output error of order the output itself); the fused reductions
    accumulate moments in float64 specifically so float32 calibration
    cannot produce garbage normalized activations for models with
    offset-heavy statistics.  Reference computed in float64.
    """
    rng = np.random.default_rng(7)
    base = 100.0 + rng.standard_normal((4, 16, 8, 8)) * 0.01
    x32 = base.astype(np.float32)
    want = ref_group_norm(x32.astype(np.float64), 4)
    got = F.group_norm(x32, 4)
    assert got.dtype == np.float32
    # Normalized outputs are unit-scale; a cancellation blow-up would be
    # O(1..100) absolute error (observed 8.6 for the naive f32 fusion).
    np.testing.assert_allclose(got, want, atol=5e-3)
    tokens = (100.0 + rng.standard_normal((4, 384)) * 0.01).astype(np.float32)
    want_ln = ref_layer_norm(tokens.astype(np.float64))
    np.testing.assert_allclose(F.layer_norm(tokens), want_ln, atol=5e-3)


def test_group_norm_rejects_indivisible_groups():
    with pytest.raises(ValueError, match="not divisible"):
        F.group_norm(np.zeros((1, 6, 2, 2)), 4)


@pytest.mark.parametrize("offset", [0.0, 1.2, 100.0])
def test_layer_norm_fused_matches_reference(offset):
    rng = np.random.default_rng(6)
    x = rng.standard_normal((2, 5, 32)) * 1.7 + offset
    w = rng.standard_normal(32)
    b = rng.standard_normal(32)
    np.testing.assert_allclose(
        F.layer_norm(x, w, b), ref_layer_norm(x, w, b), rtol=1e-9, atol=1e-9
    )
    np.testing.assert_allclose(
        F.layer_norm(x), ref_layer_norm(x), rtol=1e-9, atol=1e-9
    )


def test_fused_variance_never_goes_negative():
    """A constant input has zero variance; cancellation must clip, not NaN."""
    x = np.full((1, 4, 4, 4), 7.3)
    out = F.group_norm(x, 2)
    assert np.all(np.isfinite(out))
    ln = F.layer_norm(np.full((2, 3, 8), -2.5))
    assert np.all(np.isfinite(ln))


# -- calibration-scale invariance (all seven benchmarks) ---------------------

def _calibration_scales(spec, dtype="float64", ref_norms=False, steps=3):
    """Per-layer scales from one short calibration trajectory.

    Mirrors ``DittoEngine.from_model``'s calibration setup (same seed, same
    pipeline shape) without quantizing, so two arms differing only in the
    norm kernels / trajectory dtype are directly comparable.
    """
    saved = (F.group_norm, F.layer_norm)
    if ref_norms:
        F.group_norm, F.layer_norm = ref_group_norm, ref_layer_norm
    try:
        model = spec.build_model()
        pipeline = GenerationPipeline(
            model,
            make_sampler(spec.sampler, DiffusionSchedule(1000), steps),
            spec.sample_shape,
            spec.build_conditioning(),
        )
        rng = np.random.default_rng(11)
        with calibration_precision(model, pipeline, dtype):
            return calibrate_model(model, lambda: pipeline.generate(1, rng))
    finally:
        F.group_norm, F.layer_norm = saved


def _max_rel_drift(a, b):
    assert set(a) == set(b) and a
    return max(abs(a[k] - b[k]) / b[k] for k in b)


@pytest.mark.parametrize("bench_name", BENCHMARKS)
def test_fused_norm_scales_invariant(bench_name):
    """Quantization scales are unaffected by the fused-norm summation order."""
    spec = get_benchmark(bench_name)
    fused = _calibration_scales(spec)
    reference = _calibration_scales(spec, ref_norms=True)
    assert _max_rel_drift(fused, reference) < NORM_SCALE_BOUND


@pytest.mark.parametrize("bench_name", BENCHMARKS)
def test_f32_calibration_scale_drift_bounded(bench_name):
    """float32 trajectories move every scale far below the integer grid."""
    spec = get_benchmark(bench_name)
    f64 = _calibration_scales(spec, dtype="float64")
    f32 = _calibration_scales(spec, dtype="float32")
    assert _max_rel_drift(f32, f64) < F32_SCALE_BOUND


@pytest.mark.parametrize("bench_name", ["DDPM", "DiT"])
def test_f32_calibration_end_metrics_bounded(bench_name):
    """End samples of f32- vs f64-calibrated engines agree to ~rounding."""
    spec = get_benchmark(bench_name)
    steps = 6 if bench_name == "DDPM" else 4
    s64 = DittoEngine.from_benchmark(
        spec, num_steps=steps, calibration_dtype="float64"
    ).run(batch_size=1, seed=0).samples
    s32 = DittoEngine.from_benchmark(
        spec, num_steps=steps, calibration_dtype="float32"
    ).run(batch_size=1, seed=0).samples
    rel_l1 = np.abs(s32 - s64).sum() / np.abs(s64).sum()
    assert rel_l1 < END_METRIC_BOUND


# -- the fast path actually runs in float32 and restores everything ----------

def test_calibration_precision_casts_and_restores():
    spec = get_benchmark("DDPM")
    model = spec.build_model()
    pipeline = GenerationPipeline(
        model,
        make_sampler(spec.sampler, DiffusionSchedule(1000), 2),
        spec.sample_shape,
        spec.build_conditioning(),
    )
    seen = set()
    for _, module in model.named_modules():
        if isinstance(module, Conv2d):
            module.register_forward_hook(
                lambda _m, inputs, output: seen.add(
                    (inputs[0].dtype, output.dtype)
                )
            )
    with calibration_precision(model, pipeline, "float32"):
        assert all(
            p.data.dtype == np.float32 for _, p in model.named_parameters()
        )
        pipeline.generate(1, np.random.default_rng(0))
    # Every conv in the trajectory saw float32 in AND out - no silent
    # float64 re-promotion anywhere in the forward (embeddings included).
    assert seen == {(np.dtype(np.float32), np.dtype(np.float32))}
    # ...and the context restored the float64 world exactly.
    assert all(p.data.dtype == np.float64 for _, p in model.named_parameters())
    assert F.embedding_dtype() is None
    assert "predict_noise" not in pipeline.__dict__
    assert pipeline._cond_cache == {}


def test_calibration_precision_restores_after_setup_failure():
    """A cast failing mid-setup must roll back everything already swapped -
    a user-owned model can never come back half-cast to float32."""

    class ExplodingArray(np.ndarray):
        def astype(self, *args, **kwargs):
            raise MemoryError("boom")

    spec = get_benchmark("DDPM")
    model = spec.build_model()
    # Conditioning casts run AFTER the parameter swap, so this detonates
    # with every float64 parameter already converted.
    exploding = np.zeros((1, 4), dtype=np.float64).view(ExplodingArray)
    pipeline = GenerationPipeline(
        model,
        make_sampler(spec.sampler, DiffusionSchedule(1000), 2),
        spec.sample_shape,
        {"context": exploding},
    )
    with pytest.raises(MemoryError):
        with calibration_precision(model, pipeline, "float32"):
            pass  # pragma: no cover - setup raises before the yield
    assert all(p.data.dtype == np.float64 for _, p in model.named_parameters())
    assert F.embedding_dtype() is None
    assert "predict_noise" not in pipeline.__dict__


def test_calibration_precision_float64_is_noop():
    spec = get_benchmark("DDPM")
    model = spec.build_model()
    pipeline = GenerationPipeline(
        model,
        make_sampler(spec.sampler, DiffusionSchedule(1000), 2),
        spec.sample_shape,
        spec.build_conditioning(),
    )
    with calibration_precision(model, pipeline, "float64"):
        assert all(
            p.data.dtype == np.float64 for _, p in model.named_parameters()
        )


def test_calibration_precision_rejects_other_dtypes():
    spec = get_benchmark("DDPM")
    model = spec.build_model()
    pipeline = GenerationPipeline(
        model,
        make_sampler(spec.sampler, DiffusionSchedule(1000), 2),
        spec.sample_shape,
        spec.build_conditioning(),
    )
    with pytest.raises(ValueError, match="float32 or float64"):
        with calibration_precision(model, pipeline, "float16"):
            pass  # pragma: no cover


# -- cache-key separation ----------------------------------------------------

def test_engine_key_distinguishes_calibration_dtype():
    spec = get_benchmark("DDPM")
    default = engine_key(spec)
    explicit_f32 = engine_key(spec, calibration_dtype="float32")
    f64 = engine_key(spec, calibration_dtype="float64")
    # The default IS float32: equivalent invocations share one entry...
    assert default == explicit_f32
    # ...while legacy-precision engines can never collide with them.
    assert f64 != default


def test_engine_key_respects_spec_dtype_pin():
    """A spec pinned to float64 must not share keys with a float32 override
    (engine_key resolves exactly like from_benchmark)."""
    import dataclasses

    spec = get_benchmark("DDPM")
    pinned = dataclasses.replace(spec, calibration_dtype="float64")
    assert engine_key(pinned) == engine_key(pinned, calibration_dtype="float64")
    assert engine_key(pinned) != engine_key(pinned, calibration_dtype="float32")
    # An explicit float32 pin is the engine default: behaviorally identical
    # specs share one cache entry (signature normalizes the dtype).
    pinned_f32 = dataclasses.replace(spec, calibration_dtype="float32")
    assert engine_key(pinned_f32) == engine_key(spec)
