"""Tests for classifier-free guidance (CFG) under the Ditto algorithm.

Stable-Diffusion-style inference evaluates the denoiser twice per step
(conditional + unconditional) and extrapolates.  The pipeline implements
this as one stacked batch, which keeps the per-layer temporal state layout
identical across steps - so Ditto's difference processing remains bit-exact
even with guidance enabled.
"""

import numpy as np
import pytest

from repro.core.modes import ExecutionMode
from repro.diffusion import DiffusionSchedule, GenerationPipeline, make_sampler
from repro.models import build_text_encoder
from repro.models.unet import UNet
from repro.nn import Module
from repro.quant import quantize_model, reset_model_state, set_model_mode


class EchoModel(Module):
    """Returns context-dependent pseudo-noise; records call batches."""

    def __init__(self):
        super().__init__()
        self.batches = []

    def forward(self, x, t, context=None):
        self.batches.append(x.shape[0])
        if context is None:
            return 0.1 * x
        bias = context.mean(axis=(1, 2))[:, None, None, None]
        return 0.1 * x + bias


def make_pipeline(model, guidance=None, batch_ctx=None):
    sched = DiffusionSchedule(100)
    ctx = np.ones((1, 2, 4)) if batch_ctx is None else batch_ctx
    uncond = {"context": np.zeros_like(ctx)} if guidance else None
    return GenerationPipeline(
        model,
        make_sampler("ddim", sched, 3),
        (2, 4, 4),
        conditioning={"context": ctx},
        guidance_scale=guidance,
        uncond_conditioning=uncond,
    )


def test_cfg_requires_uncond():
    with pytest.raises(ValueError):
        GenerationPipeline(
            EchoModel(), make_sampler("ddim", DiffusionSchedule(100), 3),
            (2, 4, 4), guidance_scale=7.5,
        )


def test_cfg_key_sets_must_match():
    sampler = make_sampler("ddim", DiffusionSchedule(100), 3)
    ctx = np.ones((1, 2, 4))
    # A key only in conditioning used to raise a bare KeyError mid-step; a
    # key only in uncond was silently dropped. Both now fail at construction.
    with pytest.raises(ValueError, match="missing from uncond: \\['context'\\]"):
        GenerationPipeline(
            EchoModel(), sampler, (2, 4, 4),
            conditioning={"context": ctx},
            guidance_scale=5.0,
            uncond_conditioning={},
        )
    with pytest.raises(ValueError, match="only in uncond: \\['extra'\\]"):
        GenerationPipeline(
            EchoModel(), sampler, (2, 4, 4),
            conditioning={"context": ctx},
            guidance_scale=5.0,
            uncond_conditioning={"context": 0 * ctx, "extra": ctx},
        )


def test_cfg_merged_identity_stable_across_steps():
    """CFG's stacked conditioning is memoized per batch size, so the cross-
    attention context cache (keyed by identity) holds across time steps."""
    model = EchoModel()
    pipe = make_pipeline(model, guidance=2.0)
    seen = []
    original_forward = model.forward

    def spying_forward(x, t, context=None):
        seen.append(id(context))
        return original_forward(x, t, context=context)

    model.forward = spying_forward
    pipe.generate(2, np.random.default_rng(0))
    assert len(set(seen)) == 1


def test_cfg_doubles_model_batch():
    model = EchoModel()
    pipe = make_pipeline(model, guidance=5.0)
    pipe.generate(2, np.random.default_rng(0))
    assert all(b == 4 for b in model.batches)  # 2 samples x 2 branches


def test_cfg_formula():
    model = EchoModel()
    pipe = make_pipeline(model, guidance=3.0)
    x = np.ones((1, 2, 4, 4))
    eps = pipe.predict_noise(x, 10)
    # cond branch: 0.1x + 1.0 ; uncond branch: 0.1x + 0.0
    expected = 0.1 * x + 0.0 + 3.0 * ((0.1 * x + 1.0) - (0.1 * x + 0.0))
    np.testing.assert_allclose(eps, expected, rtol=1e-12)


def test_guidance_scale_one_is_plain_conditional():
    model = EchoModel()
    pipe = make_pipeline(model, guidance=None)
    model2 = EchoModel()
    pipe2 = make_pipeline(model2, guidance=1.0)
    x = np.ones((1, 2, 4, 4))
    np.testing.assert_allclose(pipe.predict_noise(x, 5), pipe2.predict_noise(x, 5))
    assert model2.batches == [1]  # no stacking at scale 1.0


def test_conditioning_tiled_to_batch():
    model = EchoModel()
    pipe = make_pipeline(model)
    out = pipe.generate(3, np.random.default_rng(0))
    assert out.shape == (3, 2, 4, 4)


def test_cfg_changes_samples():
    model = EchoModel()
    plain = make_pipeline(model).generate(1, np.random.default_rng(4))
    guided = make_pipeline(model, guidance=7.5).generate(
        1, np.random.default_rng(4)
    )
    assert not np.allclose(plain, guided)


def test_cfg_ditto_bit_exact():
    """Temporal difference processing stays exact under CFG stacking."""
    encoder = build_text_encoder()
    ctx = encoder.encode(["a red bus parked on the street"])
    uncond_ctx = encoder.encode([""])
    qmodel = quantize_model(
        UNet(
            in_channels=2,
            base_channels=8,
            channel_mults=(1, 2),
            attention_levels=(1,),
            block_type="transformer",
            context_dim=16,
            rng=np.random.default_rng(3),
        )
    )
    sched = DiffusionSchedule(100)

    def run(mode):
        reset_model_state(qmodel)
        pipe = GenerationPipeline(
            qmodel,
            make_sampler("ddim", sched, 4),
            (2, 8, 8),
            conditioning={"context": ctx},
            guidance_scale=4.0,
            uncond_conditioning={"context": uncond_ctx},
        )
        calls = [0]
        original = pipe.predict_noise

        def stepped(x, t):
            set_model_mode(qmodel, ExecutionMode.DENSE if calls[0] == 0 else mode)
            calls[0] += 1
            return original(x, t)

        pipe.predict_noise = stepped
        return pipe.generate(1, np.random.default_rng(9))

    dense = run(ExecutionMode.DENSE)
    temporal = run(ExecutionMode.TEMPORAL)
    np.testing.assert_allclose(temporal, dense, rtol=1e-9, atol=1e-12)
