"""Unit + property tests for bit-width requirement classification (Fig. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitWidthStats, classify, required_bits


def test_classify_buckets():
    values = np.array([0, 0, 3, -8, 7, 8, -9, 127])
    stats = classify(values)
    assert stats.total == 8
    assert stats.zero == 2
    assert stats.low == 3  # 3, -8, 7
    assert stats.high == 3  # 8, -9, 127


def test_classify_empty():
    stats = classify(np.array([]))
    assert stats.total == 0
    assert stats.zero_frac == 0.0


def test_fractions_sum_to_one(rng):
    stats = classify(rng.integers(-128, 128, size=1000))
    assert stats.zero_frac + stats.low_frac + stats.high_frac == pytest.approx(1.0)


def test_low_or_zero_frac():
    stats = classify(np.array([0, 1, 100]))
    assert stats.low_or_zero_frac == pytest.approx(2 / 3)


def test_merge():
    a = classify(np.array([0, 1]))
    b = classify(np.array([100]))
    merged = a.merge(b)
    assert merged.total == 3
    assert merged.zero == 1 and merged.low == 1 and merged.high == 1


def test_empty_stats():
    empty = BitWidthStats.empty()
    assert empty.total == 0
    merged = empty.merge(classify(np.array([5])))
    assert merged.total == 1


def test_required_bits_reference_values():
    values = np.array([0, 1, -1, 7, -8, 8, -9, 127, -128])
    bits = required_bits(values)
    assert bits.tolist() == [0, 2, 1, 4, 4, 5, 5, 8, 8]


def _required_bits_reference(v: int) -> int:
    """Exact scalar reference: signed bit-width via int.bit_length."""
    if v == 0:
        return 0
    magnitude = v if v >= 0 else ~v  # ~v == -v - 1
    return magnitude.bit_length() + 1


def test_required_bits_int8_diff_range():
    """Every value an int8 temporal/spatial difference can take: [-255, 255]."""
    values = np.arange(-255, 256)
    bits = required_bits(values)
    expected = [_required_bits_reference(int(v)) for v in values]
    assert bits.tolist() == expected


def test_required_bits_power_of_two_boundaries():
    """±2^k and neighbours up to the float53 precision cliff and beyond.

    The old float ``ceil(log2(v + 1))`` implementation went wrong once
    ``v + 1`` stopped being representable: ``2**53`` classified as 54 bits
    instead of 55.  The integer bit-length path must be exact everywhere.
    """
    exponents = [1, 2, 3, 4, 7, 8, 15, 23, 24, 31, 32, 52, 53, 62]
    probes = []
    for k in exponents:
        for delta in (-1, 0, 1):
            probes.extend([(1 << k) + delta, -((1 << k) + delta)])
    values = np.array(probes, dtype=np.int64)
    bits = required_bits(values)
    expected = [_required_bits_reference(int(v)) for v in values]
    assert bits.tolist() == expected


def test_required_bits_int64_extremes():
    values = np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max])
    assert required_bits(values).tolist() == [64, 64]


def test_required_bits_preserves_shape():
    values = np.array([[0, 3], [-8, 127]])
    assert required_bits(values).shape == (2, 2)


def test_4bit_boundary_consistency():
    """classify's low bucket must agree with required_bits <= 4."""
    values = np.arange(-128, 128)
    bits = required_bits(values)
    stats = classify(values)
    low_by_bits = int(np.count_nonzero((bits > 0) & (bits <= 4)))
    assert stats.low == low_by_bits
    assert stats.zero == int(np.count_nonzero(bits == 0))


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(1, 500))
def test_classify_partition_property(seed, size):
    rng = np.random.default_rng(seed)
    values = rng.integers(-300, 300, size=size)
    stats = classify(values)
    assert stats.zero + stats.low + stats.high == stats.total == size


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_merge_is_additive(seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(-50, 50, size=64)
    b = rng.integers(-200, 200, size=32)
    merged = classify(a).merge(classify(b))
    joint = classify(np.concatenate([a, b]))
    assert merged == joint
