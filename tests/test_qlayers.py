"""Exactness and behaviour tests for the quantized difference-processing layers.

The central claim of the Ditto algorithm (paper Section IV) is that temporal
difference processing is *numerically equivalent* to dense quantized
execution; these tests verify it layer by layer, including the attention
identities, under randomized inputs (hypothesis).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modes import ExecutionMode
from repro.core.trace import TraceRecorder
from repro.nn import Attention, Conv2d, Linear
from repro.quant import (
    QAttention,
    QConv2d,
    QLinear,
    iter_qlayers,
    quantize_model,
    reset_model_state,
    set_model_mode,
)


def _drifted(rng, shape, scale=0.05):
    """A pair of tensors emulating adjacent-time-step inputs."""
    a = rng.normal(size=shape)
    b = a + rng.normal(0.0, scale, size=shape)
    return a, b


# ---------------------------------------------------------------------------
# QLinear
# ---------------------------------------------------------------------------

def test_qlinear_dense_matches_fakequant(rng):
    fp = Linear(8, 4, rng=rng)
    q = QLinear.from_float(fp)
    x = rng.normal(size=(3, 8))
    out = q(x)
    expected = (
        q.input_quant.quantize(x) @ q.q_weight.T
    ) * q.input_quant.scale * q.weight_scale + fp.bias.data
    np.testing.assert_allclose(out, expected, rtol=1e-12)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), steps=st.integers(2, 5))
def test_qlinear_temporal_exactness(seed, steps):
    rng = np.random.default_rng(seed)
    fp = Linear(8, 4, rng=rng)
    q_dense = QLinear.from_float(fp)
    q_temp = QLinear.from_float(fp)
    x = rng.normal(size=(2, 8))
    history = [x]
    for _ in range(steps - 1):
        history.append(history[-1] + rng.normal(0.0, 0.05, size=x.shape))
    q_dense.mode = ExecutionMode.DENSE
    q_temp.mode = ExecutionMode.TEMPORAL
    for xt in history:
        dense = q_dense(xt)
        temporal = q_temp(xt)
        np.testing.assert_array_equal(dense, temporal)


def test_qlinear_spatial_exactness(rng):
    fp = Linear(8, 4, rng=rng)
    q_dense = QLinear.from_float(fp)
    q_spatial = QLinear.from_float(fp)
    q_spatial.mode = ExecutionMode.SPATIAL
    x = rng.normal(size=(6, 8))
    np.testing.assert_array_equal(q_dense(x), q_spatial(x))


def test_qlinear_temporal_without_state_falls_back_dense(rng):
    fp = Linear(8, 4, rng=rng)
    q = QLinear.from_float(fp)
    q.mode = ExecutionMode.TEMPORAL
    out = q(rng.normal(size=(1, 8)))  # no previous step yet
    assert out.shape == (1, 4)


def test_qlinear_state_reset(rng):
    fp = Linear(8, 4, rng=rng)
    q = QLinear.from_float(fp)
    q(rng.normal(size=(1, 8)))
    assert q._prev_q_in is not None
    q.reset_state()
    assert q._prev_q_in is None and q._prev_out_int is None


def test_qlinear_shape_change_resets_diff(rng):
    fp = Linear(8, 4, rng=rng)
    q = QLinear.from_float(fp)
    q.mode = ExecutionMode.TEMPORAL
    q(rng.normal(size=(1, 8)))
    out = q(rng.normal(size=(3, 8)))  # different batch: diff impossible
    assert out.shape == (3, 4)


# ---------------------------------------------------------------------------
# QConv2d
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000))
def test_qconv_temporal_exactness(seed):
    rng = np.random.default_rng(seed)
    fp = Conv2d(3, 5, 3, padding=1, rng=rng)
    q_dense = QConv2d.from_float(fp)
    q_temp = QConv2d.from_float(fp)
    q_temp.mode = ExecutionMode.TEMPORAL
    a, b = _drifted(rng, (1, 3, 6, 6))
    np.testing.assert_array_equal(q_dense(a), q_temp(a))
    np.testing.assert_array_equal(q_dense(b), q_temp(b))


def test_qconv_strided_temporal_exactness(rng):
    fp = Conv2d(2, 4, 3, stride=2, padding=1, rng=rng)
    q_dense = QConv2d.from_float(fp)
    q_temp = QConv2d.from_float(fp)
    q_temp.mode = ExecutionMode.TEMPORAL
    a, b = _drifted(rng, (1, 2, 8, 8))
    np.testing.assert_array_equal(q_dense(a), q_temp(a))
    np.testing.assert_array_equal(q_dense(b), q_temp(b))


def test_qconv_records_trace(rng):
    fp = Conv2d(2, 4, 3, padding=1, rng=rng)
    q = QConv2d.from_float(fp)
    q.layer_name = "probe"
    with TraceRecorder() as rec:
        q(rng.normal(size=(1, 2, 4, 4)))
    assert len(rec.trace) == 1
    step = rec.trace.steps[0]
    assert step.layer_name == "probe"
    assert step.kind == "conv"
    assert step.macs == 4 * 4 * 4 * (2 * 9)
    assert step.stats_temporal is None  # first step has no diff


# ---------------------------------------------------------------------------
# QAttention
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2000))
def test_qattention_self_temporal_exactness(seed):
    """S_t = S_prev + Q_t dK + dQ K_prev must equal dense Q_t K_t."""
    rng = np.random.default_rng(seed)
    fp = Attention(8, num_heads=2, rng=rng)
    q_dense = QAttention.from_float(fp)
    q_temp = QAttention.from_float(fp)
    q_temp.mode = ExecutionMode.TEMPORAL
    for child in (q_temp.to_q, q_temp.to_k, q_temp.to_v, q_temp.to_out):
        child.mode = ExecutionMode.TEMPORAL
    a, b = _drifted(rng, (1, 5, 8))
    np.testing.assert_allclose(q_dense(a), q_temp(a), rtol=1e-12)
    np.testing.assert_allclose(q_dense(b), q_temp(b), rtol=1e-12)


def test_qattention_cross_context_cached(rng):
    fp = Attention(8, num_heads=2, context_dim=6, rng=rng)
    q = QAttention.from_float(fp)
    ctx = rng.normal(size=(1, 3, 6))
    x1 = rng.normal(size=(1, 5, 8))
    with TraceRecorder() as rec:
        q(x1, context=ctx)
        q(x1 + 0.01, context=ctx)
    names = [s.layer_name for s in rec.trace]
    # to_k / to_v execute once (context constant), to_q twice.
    assert names.count(".to_k") == 1
    assert names.count(".to_v") == 1
    assert names.count(".to_q") == 2


def test_qattention_cross_temporal_exactness(rng):
    fp = Attention(8, num_heads=2, context_dim=6, rng=rng)
    q_dense = QAttention.from_float(fp)
    q_temp = QAttention.from_float(fp)
    q_temp.mode = ExecutionMode.TEMPORAL
    ctx = rng.normal(size=(1, 3, 6))
    a, b = _drifted(rng, (1, 5, 8))
    np.testing.assert_allclose(
        q_dense(a, context=ctx), q_temp(a, context=ctx), rtol=1e-12
    )
    np.testing.assert_allclose(
        q_dense(b, context=ctx), q_temp(b, context=ctx), rtol=1e-12
    )


def test_qattention_cross_requires_context(rng):
    fp = Attention(8, num_heads=2, context_dim=6, rng=rng)
    q = QAttention.from_float(fp)
    with pytest.raises(ValueError):
        q(rng.normal(size=(1, 5, 8)))


def test_qattention_temporal_records_two_sub_ops(rng):
    fp = Attention(8, num_heads=2, rng=rng)
    q = QAttention.from_float(fp)
    q.mode = ExecutionMode.TEMPORAL
    a, b = _drifted(rng, (1, 5, 8))
    with TraceRecorder() as rec:
        q(a)
        q(b)
    qk_steps = [s for s in rec.trace if s.kind == "attn_qk"]
    assert qk_steps[0].stats_temporal is None
    assert qk_steps[1].stats_temporal is not None
    assert qk_steps[1].sub_ops_temporal == 2


def test_qattention_cross_single_sub_op(rng):
    fp = Attention(8, num_heads=2, context_dim=6, rng=rng)
    q = QAttention.from_float(fp)
    ctx = rng.normal(size=(1, 3, 6))
    a, b = _drifted(rng, (1, 5, 8))
    with TraceRecorder() as rec:
        q(a, context=ctx)
        q(b, context=ctx)
    qk_steps = [s for s in rec.trace if s.kind == "attn_qk"]
    assert qk_steps[1].sub_ops_temporal == 1
    assert qk_steps[1].weight_elems > 0  # K' treated as weight


# ---------------------------------------------------------------------------
# quantize_model
# ---------------------------------------------------------------------------

def _tiny_unet(seed=4):
    from repro.models import UNet

    return UNet(
        in_channels=2,
        base_channels=8,
        channel_mults=(1,),
        attention_levels=(0,),
        block_type="attention",
        rng=np.random.default_rng(seed),
    )


def test_quantize_model_swaps_everything():
    model = quantize_model(_tiny_unet())
    from repro.nn import Attention as FloatAttention
    from repro.nn import Conv2d as FloatConv
    from repro.nn import Linear as FloatLinear

    for _, module in model.named_modules():
        assert not type(module) in (FloatLinear, FloatConv, FloatAttention)


def test_quantize_model_assigns_names():
    model = quantize_model(_tiny_unet())
    names = [name for name, _ in iter_qlayers(model)]
    assert "conv_in" in names
    assert all(name for name in names)


def test_quantize_model_applies_calibration():
    model = _tiny_unet()
    qmodel = quantize_model(model, calibration={"conv_in": 0.125})
    layers = dict(iter_qlayers(qmodel))
    assert layers["conv_in"].input_quant.scale == 0.125


def test_set_mode_and_reset_state_helpers(rng):
    model = quantize_model(_tiny_unet())
    set_model_mode(model, ExecutionMode.TEMPORAL)
    assert all(q.mode is ExecutionMode.TEMPORAL for _, q in iter_qlayers(model))
    model(rng.normal(size=(1, 2, 8, 8)), np.array([3.0]))
    reset_model_state(model)
    assert all(q._prev_q_in is None for _, q in iter_qlayers(model))


def test_full_model_dense_temporal_equivalence(rng):
    """Whole-model invariant: execution mode never changes the output."""
    model = quantize_model(_tiny_unet())
    x1 = rng.normal(size=(1, 2, 8, 8))
    x2 = x1 + rng.normal(0.0, 0.03, size=x1.shape)
    t = np.array([5.0])

    set_model_mode(model, ExecutionMode.DENSE)
    reset_model_state(model)
    dense1, dense2 = model(x1, t), model(x2, t)

    reset_model_state(model)
    set_model_mode(model, ExecutionMode.DENSE)
    _ = model(x1, t)
    set_model_mode(model, ExecutionMode.TEMPORAL)
    temporal2 = model(x2, t)
    np.testing.assert_allclose(temporal2, dense2, rtol=1e-9, atol=1e-12)
