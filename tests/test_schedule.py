"""Unit + property tests for diffusion schedules and the forward process."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import DiffusionSchedule


def test_linear_schedule_endpoints():
    sched = DiffusionSchedule(100, beta_start=1e-4, beta_end=2e-2)
    assert sched.betas[0] == pytest.approx(1e-4)
    assert sched.betas[-1] == pytest.approx(2e-2)


def test_alphas_cumprod_monotone_decreasing():
    sched = DiffusionSchedule(200)
    diffs = np.diff(sched.alphas_cumprod)
    assert (diffs < 0).all()
    assert 0.0 < sched.alphas_cumprod[-1] < sched.alphas_cumprod[0] < 1.0


def test_cosine_schedule_valid():
    sched = DiffusionSchedule(100, kind="cosine")
    assert (sched.betas > 0).all()
    assert (sched.betas <= 0.999).all()


def test_unknown_schedule_kind():
    with pytest.raises(ValueError):
        DiffusionSchedule(10, kind="exp")


def test_too_few_steps_rejected():
    with pytest.raises(ValueError):
        DiffusionSchedule(1)


def test_alpha_bar_clean_limit():
    sched = DiffusionSchedule(50)
    assert sched.alpha_bar(-1) == 1.0
    assert sched.alpha_bar(0) == pytest.approx(float(sched.alphas_cumprod[0]))


def test_add_noise_statistics(rng):
    sched = DiffusionSchedule(100)
    x0 = np.zeros((4, 3, 8, 8))
    xt, eps = sched.add_noise(x0, t=99, rng=rng)
    # At the last step x_t is nearly pure noise.
    assert xt.std() == pytest.approx(np.sqrt(1 - sched.alpha_bar(99)), rel=0.1)
    assert eps.shape == x0.shape


def test_add_noise_reconstruction(rng):
    """x_t must equal sqrt(a)x0 + sqrt(1-a)eps exactly."""
    sched = DiffusionSchedule(100)
    x0 = rng.normal(size=(1, 2, 4, 4))
    t = 42
    xt, eps = sched.add_noise(x0, t, rng=rng)
    a = sched.alpha_bar(t)
    np.testing.assert_allclose(xt, np.sqrt(a) * x0 + np.sqrt(1 - a) * eps, rtol=1e-12)


def test_spaced_timesteps_descending():
    sched = DiffusionSchedule(100)
    steps = sched.spaced_timesteps(10)
    assert len(steps) == 10
    assert (np.diff(steps) < 0).all()
    assert steps[-1] == 0


def test_spaced_timesteps_bounds():
    sched = DiffusionSchedule(100)
    with pytest.raises(ValueError):
        sched.spaced_timesteps(0)
    with pytest.raises(ValueError):
        sched.spaced_timesteps(101)


@settings(max_examples=30, deadline=None)
@given(
    train=st.integers(10, 500),
    num=st.integers(1, 10),
)
def test_spaced_timesteps_property(train, num):
    sched = DiffusionSchedule(train)
    steps = sched.spaced_timesteps(min(num, train))
    assert steps.min() >= 0
    assert steps.max() < train
    assert len(set(steps.tolist())) == len(steps)
