"""Per-batch-element temporal-state invariance (the serving contract).

A batch-N engine run must be bit-exact with N independent batch-1 runs
seeded per element: every quantized layer's cached temporal state
(``_prev_q_in`` / ``_prev_out_int``, QConv2d's ``_prev_cols``, attention's
``_prev`` dicts) differences along the batch axis, and every sticky
quantizer scale freezes batch-independently (the engine's probe tiles one
sample).  These tests pin that contract for a conv-only benchmark, a
CFG/attention benchmark, and a TDQ cluster-boundary crossing at batch > 1.

The contract extends along two axes pinned below:

* **stochastic samplers** - per-element ``SeedSequence.spawn`` noise
  streams (``engine.run(rngs=...)``) make ddpm / ddim-eta>0 batch runs
  bit-exact with their per-stream batch-1 references;
* **continuous batching** - an :class:`~repro.core.session.EngineSession`
  admits/evicts rows at step boundaries, each row at its own timestep (and
  its own TDQ cluster scale); any interleaving is bit-exact with N seeded
  batch-1 runs.
"""

import numpy as np
import pytest

from repro.core import DittoEngine
from repro.models import UNet, build_text_encoder
from repro.quant.qlayers import QAttention, iter_qlayers


def _stream(i, root=77):
    """The i-th spawned child stream of SeedSequence(root), fresh each call."""
    return np.random.default_rng(np.random.SeedSequence(root, spawn_key=(i,)))


def _unet(block_type, context_dim=None, seed=3, attention_levels=(1,)):
    return UNet(
        in_channels=2,
        base_channels=8,
        channel_mults=(1, 2),
        num_res_blocks=1,
        attention_levels=attention_levels,
        block_type=block_type,
        context_dim=context_dim,
        rng=np.random.default_rng(seed),
    )


def _conv_engine(calibrate=False, step_clusters=1, num_steps=4):
    """Pure-conv UNet: no attention blocks at all."""
    return DittoEngine.from_model(
        _unet("none", attention_levels=()),
        sampler_name="ddim",
        num_steps=num_steps,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        calibrate=calibrate,
        step_clusters=step_clusters,
        benchmark="tiny-conv",
    )


def _cfg_engine(calibrate=True, num_steps=4):
    """Cross-attention UNet under classifier-free guidance (stacked batch)."""
    encoder = build_text_encoder()
    return DittoEngine.from_model(
        _unet("transformer", context_dim=16, seed=7),
        sampler_name="ddim",
        num_steps=num_steps,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        calibrate=calibrate,
        benchmark="tiny-cfg",
        guidance_scale=3.5,
        conditioning={"context": encoder.encode(["a blue car"])},
        uncond_conditioning={"context": encoder.encode([""])},
    )


def _batch_vs_singles(engine, batch, seed=3):
    """Samples of one batch-N run and of N per-element batch-1 runs."""
    batched = engine.run(batch_size=batch, seed=seed).samples
    shape = (batch,) + engine.pipeline.sample_shape
    x0 = np.random.default_rng(seed).standard_normal(shape)
    singles = np.concatenate(
        [engine.run(x_init=x0[i : i + 1]).samples for i in range(batch)],
        axis=0,
    )
    return batched, singles


def test_conv_batch_invariance_uncalibrated():
    """Conv benchmark, probe-frozen (dynamic) scales: batch-3 == 3 x batch-1."""
    engine = _conv_engine(calibrate=False)
    batched, singles = _batch_vs_singles(engine, batch=3)
    np.testing.assert_array_equal(batched, singles)
    assert not np.allclose(batched[0], batched[1])  # elements independent


def test_conv_batch_invariance_calibrated():
    engine = _conv_engine(calibrate=True)
    batched, singles = _batch_vs_singles(engine, batch=2, seed=11)
    np.testing.assert_array_equal(batched, singles)


def test_cfg_attention_batch_invariance():
    """CFG stacks [cond; uncond]: per-element state still differences itself."""
    engine = _cfg_engine()
    batched, singles = _batch_vs_singles(engine, batch=2, seed=5)
    np.testing.assert_array_equal(batched, singles)
    assert not np.allclose(batched[0], batched[1])


def test_plms_batch_invariance():
    """PLMS's warmup double-call keeps the same stacked layout every step."""
    engine = DittoEngine.from_model(
        _unet("attention", seed=9),
        sampler_name="plms",
        num_steps=3,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        calibrate=False,
        benchmark="tiny-plms",
    )
    batched, singles = _batch_vs_singles(engine, batch=2, seed=8)
    np.testing.assert_array_equal(batched, singles)


def test_tdq_cluster_boundary_batched():
    """Crossing a TDQ scale boundary at batch>1: dense fallback fires for the
    whole stacked batch (the cached grid is invalid for *every* element) and
    the run stays bit-exact with per-element batch-1 runs."""
    engine = _conv_engine(calibrate=True, step_clusters=3, num_steps=6)
    batched_result = engine.run(batch_size=2, seed=4)

    # Dense fallbacks (records without temporal stats) must appear exactly at
    # the trajectory start and at each cluster-boundary step - for a batch-2
    # run just like for batch-1.
    from repro.quant.tdq import cluster_bounds

    bounds = set(cluster_bounds(6, 3))
    fallback_steps = sorted(
        {s.step_index for s in batched_result.rich_trace if s.stats_temporal is None}
    )
    assert set(fallback_steps) == bounds
    assert len(bounds) > 1  # the trajectory actually crossed a boundary

    x0 = np.random.default_rng(4).standard_normal((2,) + engine.pipeline.sample_shape)
    singles = np.concatenate(
        [engine.run(x_init=x0[i : i + 1]).samples for i in range(2)], axis=0
    )
    np.testing.assert_array_equal(batched_result.samples, singles)


def test_probe_scales_batch_independent():
    """Sticky quantizer scales frozen by the probe must not depend on the
    batch size the engine runs at."""
    scales = {}
    for batch in (1, 4):
        engine = _cfg_engine(calibrate=False)
        engine.run(batch_size=batch, seed=0)
        for name, qlayer in iter_qlayers(engine.qmodel):
            if isinstance(qlayer, QAttention):
                scales.setdefault(batch, {})[name] = (
                    qlayer.q_quant.scale,
                    qlayer.k_quant.scale,
                    qlayer.v_quant.scale,
                )
    assert scales[1] == scales[4]
    assert scales[1]  # the model does contain attention layers


def test_run_x_init_validation():
    engine = _conv_engine(calibrate=True)
    shape = engine.pipeline.sample_shape
    with pytest.raises(ValueError, match="batch, \\*sample_shape"):
        engine.run(x_init=np.zeros(shape))  # missing batch dimension
    with pytest.raises(ValueError, match="batch_size=3 conflicts"):
        engine.run(batch_size=3, x_init=np.zeros((2,) + shape))


def test_run_x_init_matches_seeded_run():
    """run(x_init=noise) reproduces run(seed=s) when noise is seed-s noise."""
    engine = _conv_engine(calibrate=True)
    seeded = engine.run(batch_size=2, seed=21).samples
    x0 = np.random.default_rng(21).standard_normal((2,) + engine.pipeline.sample_shape)
    explicit = engine.run(x_init=x0).samples
    np.testing.assert_array_equal(seeded, explicit)


def _batch_vs_singles_streams(engine, batch, seed=3):
    """Batch-N with per-element rng streams vs N per-stream batch-1 runs."""
    shape = (batch,) + engine.pipeline.sample_shape
    x0 = np.random.default_rng(seed).standard_normal(shape)
    batched = engine.run(
        x_init=x0, record_trace=False, rngs=[_stream(i) for i in range(batch)]
    ).samples
    singles = np.concatenate(
        [
            engine.run(
                x_init=x0[i : i + 1], record_trace=False, rngs=[_stream(i)]
            ).samples
            for i in range(batch)
        ],
        axis=0,
    )
    return batched, singles


def _ddpm_engine(num_steps=5):
    return DittoEngine.from_model(
        _unet("none", attention_levels=()),
        sampler_name="ddpm",
        num_steps=num_steps,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        calibrate=False,
        benchmark="tiny-ddpm",
    )


def test_ddpm_stochastic_batch_invariance():
    """DDPM ancestral sampling at batch 3: per-element noise streams make the
    batched run bit-exact with each request's batch-1 replay."""
    engine = _ddpm_engine()
    batched, singles = _batch_vs_singles_streams(engine, batch=3)
    np.testing.assert_array_equal(batched, singles)
    assert not np.allclose(batched[0], batched[1])  # streams independent


def test_ddim_eta_stochastic_batch_invariance():
    """Stochastic DDIM (eta > 0) at batch 2 and 4 under per-element streams."""
    engine = DittoEngine.from_model(
        _unet("none", attention_levels=()),
        sampler_name="ddim",
        num_steps=4,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        calibrate=False,
        benchmark="tiny-eta",
        sampler_eta=0.7,
    )
    assert engine.pipeline.sampler.eta == 0.7
    for batch in (2, 4):
        batched, singles = _batch_vs_singles_streams(engine, batch, seed=batch)
        np.testing.assert_array_equal(batched, singles)


def test_stochastic_shared_stream_would_differ():
    """Sanity of the fixture: without per-element streams the old shared-rng
    batch draw does NOT reproduce the per-stream singles - the gap the
    SeedSequence.spawn streams close."""
    engine = _ddpm_engine()
    x0 = np.random.default_rng(3).standard_normal(
        (2,) + engine.pipeline.sample_shape
    )
    shared = engine.run(x_init=x0, record_trace=False, seed=0).samples
    singles = np.concatenate(
        [
            engine.run(
                x_init=x0[i : i + 1], record_trace=False, rngs=[_stream(i)]
            ).samples
            for i in range(2)
        ],
        axis=0,
    )
    assert not np.array_equal(shared, singles)


def test_run_rngs_validation():
    engine = _ddpm_engine(num_steps=3)
    with pytest.raises(ValueError, match="one stream per element"):
        engine.run(batch_size=2, rngs=[_stream(0)])


# -- continuous batching (EngineSession) ------------------------------------

def test_continuous_session_tdq_boundary_crossing():
    """Admissions/evictions across a TDQ cluster boundary: rows sit in
    *different* clusters within one batch (per-row scales), each crosses the
    boundary at its own step, and every completed row is bit-exact with its
    seeded batch-1 reference."""
    engine = _conv_engine(calibrate=True, step_clusters=3, num_steps=6)
    noises = [
        np.random.default_rng(40 + i).standard_normal(
            (1,) + engine.pipeline.sample_shape
        )
        for i in range(4)
    ]
    out = {}
    with engine.open_session(capacity=3) as session:
        session.admit(noises[0], tag=0)
        for _ in range(3):  # row 0 crosses the first boundary alone
            for tag, sample in session.step():
                out[tag] = sample
        session.admit(noises[1], tag=1)
        session.admit(noises[2], tag=2)
        for _ in range(3):  # row 0 finishes and frees its slot
            for tag, sample in session.step():
                out[tag] = sample
        assert sorted(out) == [0]
        session.admit(noises[3], tag=3)  # backfills row 0's slot mid-flight
        for tag, sample in session.run_to_completion().items():
            out[tag] = sample
    assert sorted(out) == [0, 1, 2, 3]
    for i in range(4):
        reference = engine.run(x_init=noises[i], record_trace=False).samples
        np.testing.assert_array_equal(out[i], reference)


def test_continuous_session_stochastic_and_eviction():
    """DDPM rows admitted mid-flight with private streams; one row evicted
    (cancelled) mid-trajectory must not perturb the survivors."""
    engine = _ddpm_engine()
    noises = [
        np.random.default_rng(60 + i).standard_normal(
            (1,) + engine.pipeline.sample_shape
        )
        for i in range(4)
    ]
    out = {}
    with engine.open_session() as session:
        session.admit(noises[0], rng=_stream(0), tag=0)
        session.admit(noises[3], rng=_stream(3), tag=3)
        for tag, sample in session.step():
            out[tag] = sample
        session.admit(noises[1], rng=_stream(1), tag=1)
        session.evict(3)  # cancel mid-flight
        for tag, sample in session.step():
            out[tag] = sample
        session.admit(noises[2], rng=_stream(2), tag=2)
        out.update(session.run_to_completion())
    assert sorted(out) == [0, 1, 2]
    for i in range(3):
        reference = engine.run(
            x_init=noises[i], record_trace=False, rngs=[_stream(i)]
        ).samples
        np.testing.assert_array_equal(out[i], reference)


def test_continuous_session_cfg_attention():
    """CFG cross-attention under composition changes: the stacked
    [cond; uncond] state remaps per block and K'/V' caching stays sound."""
    engine = _cfg_engine()
    noises = [
        np.random.default_rng(80 + i).standard_normal(
            (1,) + engine.pipeline.sample_shape
        )
        for i in range(3)
    ]
    out = {}
    with engine.open_session(capacity=2) as session:
        session.admit(noises[0], tag=0)
        for tag, sample in session.step():
            out[tag] = sample
        session.admit(noises[1], tag=1)
        for tag, sample in session.step():
            out[tag] = sample
        out.update(session.run_to_completion())
        session.admit(noises[2], tag=2)
        out.update(session.run_to_completion())
    assert sorted(out) == [0, 1, 2]
    for i in range(3):
        reference = engine.run(x_init=noises[i], record_trace=False).samples
        np.testing.assert_array_equal(out[i], reference)


def test_session_rejects_multistep_samplers():
    engine = DittoEngine.from_model(
        _unet("none", attention_levels=()),
        sampler_name="plms",
        num_steps=3,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        calibrate=False,
        benchmark="tiny-plms-session",
    )
    with pytest.raises(ValueError, match="row-steppable"):
        engine.open_session()


def test_session_admit_requires_stream_for_stochastic_sampler():
    """Stochastic samplers validate the stream at admission - a missing
    stream failing mid-step would desynchronize other rows' draws."""
    engine = _ddpm_engine()
    shape = (1,) + engine.pipeline.sample_shape
    with engine.open_session() as session:
        with pytest.raises(ValueError, match="rng stream"):
            session.admit(np.zeros(shape))
        session.admit(np.zeros(shape), rng=_stream(0))  # with stream: fine


def test_session_step_retry_after_failure_keeps_rows_exact():
    """A step that fails mid-flight (here: a transient forward error right
    after a composition change) must be recoverable: the retried step may
    not re-apply the already-applied remap and hand surviving rows another
    row's temporal state (the mapping is committed with the state, not
    after the forward)."""
    engine = _ddpm_engine()
    noises = [
        np.random.default_rng(90 + i).standard_normal(
            (1,) + engine.pipeline.sample_shape
        )
        for i in range(3)
    ]
    out = {}
    with engine.open_session() as session:
        session.admit(noises[0], rng=_stream(0), tag=0)
        session.admit(noises[1], rng=_stream(1), tag=1)
        for tag, sample in session.step():
            out[tag] = sample
        session.evict(1)  # composition change pending for the next step
        session.admit(noises[2], rng=_stream(2), tag=2)
        real_predict = engine.pipeline.predict_noise_rows

        def flaky_predict(x, t_rows):
            engine.pipeline.predict_noise_rows = real_predict
            raise RuntimeError("transient")

        engine.pipeline.predict_noise_rows = flaky_predict
        with pytest.raises(RuntimeError, match="transient"):
            session.step()  # remap already applied when the forward died
        out.update(session.run_to_completion())  # retry
    for i in (0, 2):
        reference = engine.run(
            x_init=noises[i], record_trace=False, rngs=[_stream(i)]
        ).samples
        np.testing.assert_array_equal(out[i], reference)


def test_step_failure_after_partial_draws_keeps_streams_exact():
    """A step that raises after SOME rows already drew posterior noise must
    rewind every row's stream before propagating: the sampler advances rows
    one at a time, so a third-row failure leaves rows 0-1 one draw ahead of
    their batch-1 references - a retry without the rewind would silently
    desynchronize the survivors."""
    engine = _ddpm_engine()
    noises = [
        np.random.default_rng(110 + i).standard_normal(
            (1,) + engine.pipeline.sample_shape
        )
        for i in range(3)
    ]
    out = {}
    with engine.open_session() as session:
        for i in range(3):
            session.admit(noises[i], rng=_stream(i), tag=i)
        sampler = engine.pipeline.sampler
        real_step = sampler.step
        calls = {"n": 0}

        def flaky_step(eps, index, x, rng=None):
            calls["n"] += 1
            if calls["n"] == 3:
                sampler.step = real_step
                raise RuntimeError("died after rows 0-1 drew")
            return real_step(eps, index, x, rng=rng)

        sampler.step = flaky_step
        with pytest.raises(RuntimeError, match="died after"):
            session.step()
        assert calls["n"] == 3  # rows 0 and 1 really drew before the failure
        assert session.healthy  # transient failure, not a kill
        out.update(session.run_to_completion())  # retry replays exactly
    assert sorted(out) == [0, 1, 2]
    for i in range(3):
        reference = engine.run(
            x_init=noises[i], record_trace=False, rngs=[_stream(i)]
        ).samples
        np.testing.assert_array_equal(out[i], reference)


def test_conv_state_nbytes_dedupes_aliased_cols():
    """_prev_cols aliases one of the im2col ping-pong buffers after a
    forward; the measured footprint must count that memory once (the pool
    budget cap derives from it)."""
    engine = _conv_engine(calibrate=False, num_steps=2)
    engine.run(batch_size=1, seed=0, record_trace=False)
    from repro.quant.qlayers import QConv2d

    convs = [
        q for _, q in iter_qlayers(engine.qmodel) if isinstance(q, QConv2d)
    ]
    assert convs
    for conv in convs:
        assert conv._prev_cols is not None
        assert any(buf is conv._prev_cols for buf in conv._cols_bufs)
        unique = {
            id(a): a.nbytes
            for a in (
                conv._prev_q_in, conv._prev_out_int,
                conv._prev_cols, *conv._cols_bufs,
            )
            if a is not None
        }
        assert conv.state_nbytes() == sum(unique.values())


def test_session_capacity_and_tags():
    engine = _conv_engine(calibrate=False, num_steps=3)
    shape = (1,) + engine.pipeline.sample_shape
    with engine.open_session(capacity=1) as session:
        session.admit(np.zeros(shape), tag="a")
        with pytest.raises(RuntimeError, match="at capacity"):
            session.admit(np.ones(shape), tag="b")
        with pytest.raises(KeyError):
            session.evict("missing")
        assert session.tags == ["a"]


def test_run_without_trace_matches_instrumented():
    """record_trace=False must change only the trace, never the samples."""
    engine = _cfg_engine()
    instrumented = engine.run(batch_size=2, seed=13)
    bare = engine.run(batch_size=2, seed=13, record_trace=False)
    np.testing.assert_array_equal(instrumented.samples, bare.samples)
    assert len(instrumented.rich_trace) > 0
    assert len(bare.rich_trace) == 0
    assert bare.num_model_calls == instrumented.num_model_calls
