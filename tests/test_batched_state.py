"""Per-batch-element temporal-state invariance (the serving contract).

A batch-N engine run must be bit-exact with N independent batch-1 runs
seeded per element: every quantized layer's cached temporal state
(``_prev_q_in`` / ``_prev_out_int``, QConv2d's ``_prev_cols``, attention's
``_prev`` dicts) differences along the batch axis, and every sticky
quantizer scale freezes batch-independently (the engine's probe tiles one
sample).  These tests pin that contract for a conv-only benchmark, a
CFG/attention benchmark, and a TDQ cluster-boundary crossing at batch > 1.
"""

import numpy as np
import pytest

from repro.core import DittoEngine
from repro.models import UNet, build_text_encoder
from repro.quant.qlayers import QAttention, iter_qlayers


def _unet(block_type, context_dim=None, seed=3, attention_levels=(1,)):
    return UNet(
        in_channels=2,
        base_channels=8,
        channel_mults=(1, 2),
        num_res_blocks=1,
        attention_levels=attention_levels,
        block_type=block_type,
        context_dim=context_dim,
        rng=np.random.default_rng(seed),
    )


def _conv_engine(calibrate=False, step_clusters=1, num_steps=4):
    """Pure-conv UNet: no attention blocks at all."""
    return DittoEngine.from_model(
        _unet("none", attention_levels=()),
        sampler_name="ddim",
        num_steps=num_steps,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        calibrate=calibrate,
        step_clusters=step_clusters,
        benchmark="tiny-conv",
    )


def _cfg_engine(calibrate=True, num_steps=4):
    """Cross-attention UNet under classifier-free guidance (stacked batch)."""
    encoder = build_text_encoder()
    return DittoEngine.from_model(
        _unet("transformer", context_dim=16, seed=7),
        sampler_name="ddim",
        num_steps=num_steps,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        calibrate=calibrate,
        benchmark="tiny-cfg",
        guidance_scale=3.5,
        conditioning={"context": encoder.encode(["a blue car"])},
        uncond_conditioning={"context": encoder.encode([""])},
    )


def _batch_vs_singles(engine, batch, seed=3):
    """Samples of one batch-N run and of N per-element batch-1 runs."""
    batched = engine.run(batch_size=batch, seed=seed).samples
    shape = (batch,) + engine.pipeline.sample_shape
    x0 = np.random.default_rng(seed).standard_normal(shape)
    singles = np.concatenate(
        [engine.run(x_init=x0[i : i + 1]).samples for i in range(batch)],
        axis=0,
    )
    return batched, singles


def test_conv_batch_invariance_uncalibrated():
    """Conv benchmark, probe-frozen (dynamic) scales: batch-3 == 3 x batch-1."""
    engine = _conv_engine(calibrate=False)
    batched, singles = _batch_vs_singles(engine, batch=3)
    np.testing.assert_array_equal(batched, singles)
    assert not np.allclose(batched[0], batched[1])  # elements independent


def test_conv_batch_invariance_calibrated():
    engine = _conv_engine(calibrate=True)
    batched, singles = _batch_vs_singles(engine, batch=2, seed=11)
    np.testing.assert_array_equal(batched, singles)


def test_cfg_attention_batch_invariance():
    """CFG stacks [cond; uncond]: per-element state still differences itself."""
    engine = _cfg_engine()
    batched, singles = _batch_vs_singles(engine, batch=2, seed=5)
    np.testing.assert_array_equal(batched, singles)
    assert not np.allclose(batched[0], batched[1])


def test_plms_batch_invariance():
    """PLMS's warmup double-call keeps the same stacked layout every step."""
    engine = DittoEngine.from_model(
        _unet("attention", seed=9),
        sampler_name="plms",
        num_steps=3,
        sample_shape=(2, 8, 8),
        num_train_steps=100,
        calibrate=False,
        benchmark="tiny-plms",
    )
    batched, singles = _batch_vs_singles(engine, batch=2, seed=8)
    np.testing.assert_array_equal(batched, singles)


def test_tdq_cluster_boundary_batched():
    """Crossing a TDQ scale boundary at batch>1: dense fallback fires for the
    whole stacked batch (the cached grid is invalid for *every* element) and
    the run stays bit-exact with per-element batch-1 runs."""
    engine = _conv_engine(calibrate=True, step_clusters=3, num_steps=6)
    batched_result = engine.run(batch_size=2, seed=4)

    # Dense fallbacks (records without temporal stats) must appear exactly at
    # the trajectory start and at each cluster-boundary step - for a batch-2
    # run just like for batch-1.
    from repro.quant.tdq import cluster_bounds

    bounds = set(cluster_bounds(6, 3))
    fallback_steps = sorted(
        {s.step_index for s in batched_result.rich_trace if s.stats_temporal is None}
    )
    assert set(fallback_steps) == bounds
    assert len(bounds) > 1  # the trajectory actually crossed a boundary

    x0 = np.random.default_rng(4).standard_normal((2,) + engine.pipeline.sample_shape)
    singles = np.concatenate(
        [engine.run(x_init=x0[i : i + 1]).samples for i in range(2)], axis=0
    )
    np.testing.assert_array_equal(batched_result.samples, singles)


def test_probe_scales_batch_independent():
    """Sticky quantizer scales frozen by the probe must not depend on the
    batch size the engine runs at."""
    scales = {}
    for batch in (1, 4):
        engine = _cfg_engine(calibrate=False)
        engine.run(batch_size=batch, seed=0)
        for name, qlayer in iter_qlayers(engine.qmodel):
            if isinstance(qlayer, QAttention):
                scales.setdefault(batch, {})[name] = (
                    qlayer.q_quant.scale,
                    qlayer.k_quant.scale,
                    qlayer.v_quant.scale,
                )
    assert scales[1] == scales[4]
    assert scales[1]  # the model does contain attention layers


def test_run_x_init_validation():
    engine = _conv_engine(calibrate=True)
    shape = engine.pipeline.sample_shape
    with pytest.raises(ValueError, match="batch, \\*sample_shape"):
        engine.run(x_init=np.zeros(shape))  # missing batch dimension
    with pytest.raises(ValueError, match="batch_size=3 conflicts"):
        engine.run(batch_size=3, x_init=np.zeros((2,) + shape))


def test_run_x_init_matches_seeded_run():
    """run(x_init=noise) reproduces run(seed=s) when noise is seed-s noise."""
    engine = _conv_engine(calibrate=True)
    seeded = engine.run(batch_size=2, seed=21).samples
    x0 = np.random.default_rng(21).standard_normal((2,) + engine.pipeline.sample_shape)
    explicit = engine.run(x_init=x0).samples
    np.testing.assert_array_equal(seeded, explicit)


def test_run_without_trace_matches_instrumented():
    """record_trace=False must change only the trace, never the samples."""
    engine = _cfg_engine()
    instrumented = engine.run(batch_size=2, seed=13)
    bare = engine.run(batch_size=2, seed=13, record_trace=False)
    np.testing.assert_array_equal(instrumented.samples, bare.samples)
    assert len(instrumented.rich_trace) > 0
    assert len(bare.rich_trace) == 0
    assert bare.num_model_calls == instrumented.num_model_calls
