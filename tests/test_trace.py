"""Unit tests for trace records, lowering, and byte-traffic accounting."""

import pytest

from repro.core import ExecutionMode, RichTrace, derive_layer_step
from repro.core.trace import ACT_BYTES, STATE_BYTES, Trace, TraceRecorder

from helpers import make_rich


def test_dense_lowering_bytes():
    step = derive_layer_step(make_rich(), ExecutionMode.DENSE)
    assert step.bytes_in == 100 * ACT_BYTES
    assert step.bytes_weight == 50 * ACT_BYTES
    assert step.bytes_out == 200 * ACT_BYTES
    assert step.bytes_extra == 0
    assert step.stats.high == 60


def test_temporal_lowering_adds_state_traffic():
    step = derive_layer_step(make_rich(), ExecutionMode.TEMPORAL, "none")
    # prev input load + current input store + state load/store
    expected_extra = 100 + 100 + 2 * 200 * STATE_BYTES
    assert step.bytes_extra == expected_extra
    assert step.stats.zero == 40
    assert step.mode is ExecutionMode.TEMPORAL


def test_temporal_without_stats_falls_back_dense():
    step = derive_layer_step(make_rich(temporal=False), ExecutionMode.TEMPORAL)
    assert step.mode is ExecutionMode.DENSE
    assert step.bytes_extra == 0


def test_spatial_lowering_no_extra_bytes():
    step = derive_layer_step(make_rich(), ExecutionMode.SPATIAL)
    assert step.bytes_extra == 0
    assert step.stats.zero == 10


def test_chained_bypass_skips_prev_input():
    plain = derive_layer_step(make_rich(), ExecutionMode.TEMPORAL, "chained")
    chained = derive_layer_step(
        make_rich(chained=True), ExecutionMode.TEMPORAL, "chained"
    )
    assert plain.bytes_extra - chained.bytes_extra == 100 * ACT_BYTES


def test_sign_mask_bypass_only_for_silu_groupnorm():
    silu = derive_layer_step(
        make_rich(producer="silu"), ExecutionMode.TEMPORAL, "sign_mask"
    )
    ln = derive_layer_step(
        make_rich(producer="layernorm"), ExecutionMode.TEMPORAL, "sign_mask"
    )
    assert ln.bytes_extra - silu.bytes_extra == 100 * ACT_BYTES


def test_both_bypass_is_union():
    for kwargs in ({"chained": True}, {"producer": "groupnorm"}):
        step = derive_layer_step(make_rich(**kwargs), ExecutionMode.TEMPORAL, "both")
        baseline = derive_layer_step(make_rich(), ExecutionMode.TEMPORAL, "both")
        assert step.bytes_extra < baseline.bytes_extra


def test_unknown_bypass_style_raises():
    with pytest.raises(ValueError):
        derive_layer_step(make_rich(), ExecutionMode.TEMPORAL, "magic")


def test_sub_ops_only_in_temporal():
    rich = make_rich(sub_ops=2)
    assert derive_layer_step(rich, ExecutionMode.TEMPORAL).sub_ops == 2
    assert derive_layer_step(rich, ExecutionMode.DENSE).sub_ops == 1
    assert derive_layer_step(rich, ExecutionMode.SPATIAL).sub_ops == 1


def test_rich_trace_lower_and_grouping():
    trace = RichTrace()
    for step in range(3):
        for name in ("a", "b"):
            trace.append(make_rich(step_index=step, name=name, temporal=step > 0))
    lowered = trace.lower(lambda r: ExecutionMode.TEMPORAL)
    assert isinstance(lowered, Trace)
    assert len(lowered) == 6
    assert lowered.steps[0].mode is ExecutionMode.DENSE  # no temporal stats yet
    assert lowered.steps[-1].mode is ExecutionMode.TEMPORAL
    assert trace.num_steps() == 3
    assert trace.layer_names() == ["a", "b"]
    assert set(trace.by_layer()) == {"a", "b"}
    assert set(trace.by_step()) == {0, 1, 2}


def test_trace_totals():
    trace = RichTrace()
    trace.append(make_rich())
    lowered = trace.lower(lambda r: ExecutionMode.DENSE)
    assert lowered.total_macs() == 10_000
    assert lowered.total_bytes() == 350


def test_recorder_nesting_and_isolation():
    outer = TraceRecorder()
    inner = TraceRecorder()
    with outer:
        assert TraceRecorder.current() is outer
        with inner:
            assert TraceRecorder.current() is inner
        assert TraceRecorder.current() is outer
    assert TraceRecorder.current() is None


def test_recorder_step_index():
    rec = TraceRecorder()
    rec.set_step(7)
    assert rec.step_index == 7
