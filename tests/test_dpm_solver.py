"""Tests for the DPM-Solver++(2M) sampler extension."""

import numpy as np
import pytest

from repro.diffusion import (
    DiffusionSchedule,
    DPMSolverPlusPlusSampler,
    GenerationPipeline,
    make_sampler,
)
from repro.nn import Module


class ZeroModel(Module):
    def forward(self, x, t, **cond):
        return np.zeros_like(x)


@pytest.fixture
def sched():
    return DiffusionSchedule(1000)


def test_factory_knows_dpmpp(sched):
    assert isinstance(make_sampler("dpmpp", sched, 5), DPMSolverPlusPlusSampler)


def test_first_step_is_first_order(sched, rng):
    sampler = DPMSolverPlusPlusSampler(sched, 10)
    x = rng.normal(size=(1, 2, 4, 4))
    eps = rng.normal(size=x.shape)
    out = sampler.step(eps, 0, x)
    assert out.shape == x.shape
    assert sampler._prev_x0 is not None


def test_deterministic(sched, rng):
    x = rng.normal(size=(1, 2, 4, 4))
    eps = rng.normal(size=x.shape)
    a = DPMSolverPlusPlusSampler(sched, 10).step(eps, 0, x)
    b = DPMSolverPlusPlusSampler(sched, 10).step(eps, 0, x)
    np.testing.assert_array_equal(a, b)


def test_reset_clears_history(sched, rng):
    sampler = DPMSolverPlusPlusSampler(sched, 10)
    x = rng.normal(size=(1, 2))
    sampler.step(rng.normal(size=x.shape), 0, x)
    sampler.reset()
    assert sampler._prev_x0 is None and sampler._prev_h is None


def test_final_step_returns_data_prediction(sched, rng):
    """The jump to a_bar=1 returns the (extrapolated) x0 estimate."""
    sampler = DPMSolverPlusPlusSampler(sched, 4)
    x0 = rng.normal(size=(1, 2, 4, 4))
    last = len(sampler.timesteps) - 1
    t = int(sampler.timesteps[last])
    a = sched.alpha_bar(t)
    eps = rng.normal(size=x0.shape)
    xt = np.sqrt(a) * x0 + np.sqrt(1 - a) * eps
    out = sampler.step(eps, last, xt)
    np.testing.assert_allclose(out, x0, rtol=1e-6)


def test_converges_like_ddim_with_zero_model(sched):
    """With eps == 0 both solvers drive x toward x / sqrt-schedule limits."""
    pipe_ddim = GenerationPipeline(ZeroModel(), make_sampler("ddim", sched, 12), (2, 4, 4))
    pipe_dpm = GenerationPipeline(ZeroModel(), make_sampler("dpmpp", sched, 12), (2, 4, 4))
    a = pipe_ddim.generate(1, np.random.default_rng(3))
    b = pipe_dpm.generate(1, np.random.default_rng(3))
    # eps=0 means x0 = x / sqrt(a_bar) at every step; both exact solvers of
    # the same ODE must agree closely.
    np.testing.assert_allclose(a, b, rtol=1e-6)


def test_pipeline_end_to_end_with_real_model(sched):
    from repro.models import build_ddpm_unet

    model = build_ddpm_unet()
    pipe = GenerationPipeline(model, make_sampler("dpmpp", sched, 6), (3, 16, 16))
    out = pipe.generate(1, np.random.default_rng(0))
    assert out.shape == (1, 3, 16, 16)
    assert np.isfinite(out).all()
