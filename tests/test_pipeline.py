"""Unit tests for the generation pipeline driver."""

import numpy as np
import pytest

from repro.diffusion import (
    DDIMSampler,
    DiffusionSchedule,
    GenerationPipeline,
    PLMSSampler,
)
from repro.nn import Module


class ZeroModel(Module):
    """Predicts zero noise; DDIM then just rescales x."""

    def __init__(self):
        super().__init__()
        self.calls = []

    def forward(self, x, t, **cond):
        self.calls.append((int(t[0]), dict(cond)))
        return np.zeros_like(x)


@pytest.fixture
def sched():
    return DiffusionSchedule(100)


def test_generate_shape(sched):
    pipe = GenerationPipeline(ZeroModel(), DDIMSampler(sched, 5), (2, 4, 4))
    out = pipe.generate(batch_size=3, rng=np.random.default_rng(0))
    assert out.shape == (3, 2, 4, 4)


def test_generate_deterministic_given_seed(sched):
    pipe = GenerationPipeline(ZeroModel(), DDIMSampler(sched, 5), (2, 4, 4))
    a = pipe.generate(1, np.random.default_rng(7))
    b = pipe.generate(1, np.random.default_rng(7))
    np.testing.assert_array_equal(a, b)


def test_step_callback_sequence(sched):
    pipe = GenerationPipeline(ZeroModel(), DDIMSampler(sched, 5), (2, 4, 4))
    seen = []
    pipe.generate(1, np.random.default_rng(0), step_callback=lambda i, t, x: seen.append((i, t)))
    assert [i for i, _ in seen] == list(range(5))
    ts = [t for _, t in seen]
    assert ts == sorted(ts, reverse=True)


def test_conditioning_forwarded(sched):
    model = ZeroModel()
    ctx = np.ones((1, 3, 4))
    pipe = GenerationPipeline(model, DDIMSampler(sched, 3), (2, 4, 4), {"context": ctx})
    pipe.generate(1, np.random.default_rng(0))
    assert all("context" in cond for _, cond in model.calls)


def test_x_init_override(sched):
    pipe = GenerationPipeline(ZeroModel(), DDIMSampler(sched, 2), (2, 4, 4))
    x0 = np.zeros((1, 2, 4, 4))
    out = pipe.generate(1, np.random.default_rng(0), x_init=x0)
    np.testing.assert_array_equal(out, 0.0)  # zero eps keeps zero trajectory


def test_x_init_shape_checked(sched):
    pipe = GenerationPipeline(ZeroModel(), DDIMSampler(sched, 2), (2, 4, 4))
    with pytest.raises(ValueError):
        pipe.generate(1, x_init=np.zeros((1, 3, 4, 4)))


def test_num_model_calls_ddim(sched):
    pipe = GenerationPipeline(ZeroModel(), DDIMSampler(sched, 5), (2, 4, 4))
    assert pipe.num_model_calls() == 5


def test_num_model_calls_plms_extra_step(sched):
    pipe = GenerationPipeline(ZeroModel(), PLMSSampler(sched, 5), (2, 4, 4))
    assert pipe.num_model_calls() == 6  # warmup adds one


def test_plms_pipeline_actually_makes_extra_call(sched):
    model = ZeroModel()
    pipe = GenerationPipeline(model, PLMSSampler(sched, 5), (2, 4, 4))
    pipe.generate(1, np.random.default_rng(0))
    assert len(model.calls) == 6


def test_scalar_conditioning_rejected_with_clear_message(sched):
    pipe = GenerationPipeline(
        ZeroModel(), DDIMSampler(sched, 2), (2, 4, 4), {"scale": np.float64(2.0)}
    )
    with pytest.raises(ValueError, match="'scale' is 0-d"):
        pipe.generate(1, np.random.default_rng(0))


def test_mismatched_conditioning_batch_rejected(sched):
    # Batch dim 3 can neither broadcast to nor match a batch of 2.
    pipe = GenerationPipeline(
        ZeroModel(), DDIMSampler(sched, 2), (2, 4, 4),
        {"context": np.ones((3, 2, 4))},
    )
    with pytest.raises(ValueError, match="'context' has batch dimension 3"):
        pipe.generate(2, np.random.default_rng(0))


def test_conditioning_matching_batch_passes_through(sched):
    model = ZeroModel()
    ctx = np.arange(12.0).reshape(2, 3, 2)
    pipe = GenerationPipeline(model, DDIMSampler(sched, 2), (2, 4, 4), {"context": ctx})
    pipe.generate(2, np.random.default_rng(0))
    np.testing.assert_array_equal(model.calls[0][1]["context"], ctx)


def test_tiled_conditioning_identity_stable_across_steps(sched):
    """Tiles are memoized: every step must see the same array object, or the
    cross-attention K'/V' cache (keyed by context identity) is defeated."""
    model = ZeroModel()
    pipe = GenerationPipeline(
        model, DDIMSampler(sched, 3), (2, 4, 4), {"context": np.ones((1, 3, 4))}
    )
    pipe.generate(4, np.random.default_rng(0))
    ids = {id(cond["context"]) for _, cond in model.calls}
    assert len(ids) == 1
    assert model.calls[0][1]["context"].shape == (4, 3, 4)
