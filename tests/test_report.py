"""Unit tests for hardware report dataclasses."""

import pytest

from repro.hw.report import HardwareReport, LayerCycles


def layer(name="l", step=0, compute=10.0, memory=5.0, encode=1.0, vpu=2.0,
          energy=None, bytes_moved=100):
    return LayerCycles(
        layer_name=name,
        step_index=step,
        mode="temporal",
        compute_cycles=compute,
        memory_cycles=memory,
        encode_cycles=encode,
        vpu_cycles=vpu,
        energy_pj=energy or {"compute": 3.0, "sram": 1.0},
        bytes_moved=bytes_moved,
    )


def test_layer_cycles_is_stage_max():
    assert layer(compute=10, memory=25).cycles == 25.0
    assert layer(compute=10, memory=5).cycles == 10.0


def test_stall_only_when_memory_bound():
    assert layer(compute=10, memory=25).stall_cycles == 15.0
    assert layer(compute=10, memory=5).stall_cycles == 0.0


def test_layer_total_energy():
    assert layer().total_energy_pj == pytest.approx(4.0)


def test_report_totals():
    report = HardwareReport(hardware="X")
    report.append(layer(name="a", compute=10, memory=5))
    report.append(layer(name="b", compute=10, memory=30))
    assert report.total_cycles == 40.0
    assert report.stall_cycles == 20.0
    assert report.total_bytes == 200
    assert report.total_energy_pj == pytest.approx(8.0)


def test_report_compute_cycles_capped_by_layer_time():
    report = HardwareReport(hardware="X")
    report.append(layer(compute=10, memory=30))
    # The compute engine is busy at most the layer's wall time.
    assert report.compute_cycles == 10.0


def test_energy_breakdown_merges_components():
    report = HardwareReport(hardware="X")
    report.append(layer(energy={"compute": 1.0, "dram": 2.0}))
    report.append(layer(energy={"compute": 3.0, "vpu": 4.0}))
    breakdown = report.energy_breakdown_pj()
    assert breakdown == {"compute": 4.0, "dram": 2.0, "vpu": 4.0}


def test_grouping_helpers():
    report = HardwareReport(hardware="X")
    report.append(layer(name="a", step=0))
    report.append(layer(name="a", step=1))
    report.append(layer(name="b", step=1))
    by_layer = report.cycles_by_layer()
    by_step = report.cycles_by_step()
    assert set(by_layer) == {"a", "b"}
    assert by_layer["a"] == 2 * layer().cycles
    assert set(by_step) == {0, 1}


def test_comparison_helpers():
    fast = HardwareReport(hardware="fast")
    slow = HardwareReport(hardware="slow")
    fast.append(layer(compute=10, memory=0, encode=0, vpu=0))
    slow.append(layer(compute=40, memory=0, encode=0, vpu=0))
    assert fast.speedup_over(slow) == 4.0
    assert slow.relative_energy(fast) == pytest.approx(1.0)
    assert fast.relative_memory_accesses(slow) == pytest.approx(1.0)


def test_empty_report_edge_cases():
    empty = HardwareReport(hardware="E")
    other = HardwareReport(hardware="O")
    other.append(layer())
    assert empty.speedup_over(other) == float("inf")
    assert empty.relative_memory_accesses(other) == 0.0
    assert other.relative_memory_accesses(empty) == float("inf")


def test_summary_format():
    report = HardwareReport(hardware="Ditto")
    report.append(layer())
    text = report.summary()
    assert "Ditto" in text and "cycles" in text and "bytes" in text
