"""Unit tests for the UNet family (DDPM / LDM / conditional)."""

import numpy as np
import pytest

from repro.models import (
    AttentionBlock,
    ResNetBlock,
    SpatialTransformer,
    TransformerBlock,
    UNet,
)
from repro.models.zoo import (
    CONTEXT_DIM,
    build_conditional_unet,
    build_ddpm_unet,
    build_latent_unet,
)


def test_resnet_block_shapes(rng):
    block = ResNetBlock(8, 16, emb_dim=12, rng=rng)
    out = block(rng.normal(size=(2, 8, 8, 8)), rng.normal(size=(2, 12)))
    assert out.shape == (2, 16, 8, 8)


def test_resnet_block_identity_skip(rng):
    block = ResNetBlock(8, 8, emb_dim=12, rng=rng)
    from repro.nn import Identity

    assert isinstance(block.skip, Identity)


def test_attention_block_residual(rng):
    block = AttentionBlock(8, rng=rng)
    x = rng.normal(size=(1, 8, 4, 4))
    out = block(x)
    assert out.shape == x.shape
    assert not np.allclose(out, x)


def test_transformer_block_self_and_cross(rng):
    block = TransformerBlock(8, context_dim=6, rng=rng)
    x = rng.normal(size=(2, 5, 8))
    ctx = rng.normal(size=(2, 3, 6))
    assert block(x, context=ctx).shape == x.shape


def test_spatial_transformer_wraps_tokens(rng):
    st = SpatialTransformer(8, context_dim=6, rng=rng)
    x = rng.normal(size=(1, 8, 4, 4))
    ctx = rng.normal(size=(1, 3, 6))
    assert st(x, context=ctx).shape == x.shape


def test_ddpm_unet_forward():
    model = build_ddpm_unet()
    x = np.random.default_rng(0).standard_normal((1, 3, 16, 16))
    out = model(x, np.array([10.0]))
    assert out.shape == x.shape


def test_latent_unet_forward():
    model = build_latent_unet()
    x = np.random.default_rng(0).standard_normal((1, 4, 16, 16))
    out = model(x, np.array([10.0]))
    assert out.shape == x.shape


def test_conditional_unet_requires_matching_context_dim():
    model = build_conditional_unet()
    x = np.random.default_rng(0).standard_normal((1, 4, 16, 16))
    ctx = np.random.default_rng(1).standard_normal((1, 4, CONTEXT_DIM))
    out = model(x, np.array([10.0]), context=ctx)
    assert out.shape == x.shape


def test_conditional_unet_context_changes_output():
    model = build_conditional_unet()
    x = np.random.default_rng(0).standard_normal((1, 4, 16, 16))
    rng = np.random.default_rng(1)
    a = model(x, np.array([10.0]), context=rng.standard_normal((1, 4, CONTEXT_DIM)))
    b = model(x, np.array([10.0]), context=rng.standard_normal((1, 4, CONTEXT_DIM)))
    assert not np.allclose(a, b)


def test_unet_paper_layer_names_exist():
    """The figures reference conv-in and decoder skip layers by name."""
    model = build_ddpm_unet()
    names = [n for n, _ in model.named_modules()]
    assert "conv_in" in names
    assert any(n.startswith("up.0.res.0") for n in names)


def test_unet_timestep_sensitivity():
    model = build_ddpm_unet()
    x = np.random.default_rng(0).standard_normal((1, 3, 16, 16))
    a = model(x, np.array([10.0]))
    b = model(x, np.array([90.0]))
    assert not np.allclose(a, b)


def test_class_conditional_unet_label_embedding(rng):
    model = UNet(
        in_channels=2,
        base_channels=8,
        channel_mults=(1,),
        attention_levels=(),
        block_type="none",
        num_classes=5,
        rng=rng,
    )
    x = rng.normal(size=(1, 2, 8, 8))
    out = model(x, np.array([5.0]), y=np.array([2]))
    assert out.shape == x.shape
    with pytest.raises(ValueError):
        model(x, np.array([5.0]))  # label required


def test_unet_rejects_bad_block_type():
    with pytest.raises(ValueError):
        UNet(block_type="mamba")


def test_unet_without_attention(rng):
    model = UNet(
        in_channels=2,
        base_channels=8,
        channel_mults=(1, 2),
        attention_levels=(),
        block_type="none",
        rng=rng,
    )
    out = model(rng.normal(size=(1, 2, 8, 8)), np.array([3.0]))
    assert out.shape == (1, 2, 8, 8)
