"""Unit tests for Defo's static computing-graph analysis."""

import numpy as np

from repro.core import analyze_model
from repro.models import build_dit
from repro.models.blocks import ResNetBlock
from repro.nn import GELU, Linear, Module, SiLU
from repro.quant import iter_qlayers, quantize_model


class Chain(Module):
    """linear -> silu -> linear -> linear (direct chain) -> gelu."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.fc1 = Linear(4, 4, rng=rng)
        self.act1 = SiLU()
        self.fc2 = Linear(4, 4, rng=rng)
        self.fc3 = Linear(4, 4, rng=rng)
        self.act2 = GELU()

    def forward(self, x):
        return self.act2(self.fc3(self.fc2(self.act1(self.fc1(x)))))


def test_producer_kinds_detected(rng):
    model = quantize_model(Chain())
    x = rng.normal(size=(2, 4))
    info = analyze_model(model, lambda: model(x))
    assert info["fc1"].producer_kind == "other"  # raw input
    assert info["fc2"].producer_kind == "silu"
    assert info["fc3"].producer_kind == "linear"
    assert info["fc3"].chained_input


def test_nonlinear_after_detection(rng):
    model = quantize_model(Chain())
    x = rng.normal(size=(2, 4))
    info = analyze_model(model, lambda: model(x))
    assert info["fc1"].nonlinear_after  # silu consumes it
    assert not info["fc2"].nonlinear_after  # fc3 (linear) consumes it
    assert info["fc3"].nonlinear_after  # gelu consumes it


def test_annotations_written_to_layers(rng):
    model = quantize_model(Chain())
    x = rng.normal(size=(2, 4))
    analyze_model(model, lambda: model(x))
    layers = dict(iter_qlayers(model))
    assert layers["fc3"].chained_input
    assert layers["fc2"].producer_kind == "silu"


def test_resnet_block_convs_follow_silu(rng):
    class Wrap(Module):
        def __init__(self):
            super().__init__()
            self.block = ResNetBlock(4, 4, emb_dim=6, rng=np.random.default_rng(1))

        def forward(self, x, emb):
            return self.block(x, emb)

    model = quantize_model(Wrap())
    x = rng.normal(size=(1, 4, 6, 6))
    emb = rng.normal(size=(1, 6))
    info = analyze_model(model, lambda: model(x, emb))
    # Paper Fig. 2: conv layers in ResNet blocks sit behind SiLU, which is
    # exactly what makes Cambricon-D's sign-mask dataflow applicable there.
    assert info["block.conv1"].producer_kind == "silu"
    assert info["block.conv2"].producer_kind == "silu"


def test_dit_layers_not_sign_mask_eligible(rng):
    """DiT uses LayerNorm/GeLU, so sign-mask (SiLU/GN only) cannot help."""
    from repro.core.trace import SIGN_MASK_KINDS

    model = quantize_model(build_dit())
    x = rng.normal(size=(1, 4, 16, 16))
    info = analyze_model(
        model, lambda: model(x, np.array([5.0]), y=np.array([1]))
    )
    token_path = {
        name: item
        for name, item in info.items()
        if ".attn." in name or ".mlp" in name
    }
    assert token_path  # sanity: analysis saw the transformer blocks
    eligible = [
        name
        for name, item in token_path.items()
        if item.producer_kind in SIGN_MASK_KINDS
    ]
    assert eligible == []
