"""Unit + property tests for the quantization primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import SymmetricQuantizer, dequantize, qrange, quantize


def test_qrange_8bit():
    assert qrange(8) == (-128, 127)
    assert qrange(4) == (-8, 7)


def test_quantize_produces_integers(rng):
    x = rng.normal(size=100)
    q = quantize(x, scale=0.1)
    assert np.array_equal(q, np.rint(q))


def test_quantize_clips_to_range():
    q = quantize(np.array([1e9, -1e9]), scale=1.0, bits=8)
    assert q.tolist() == [127.0, -128.0]


def test_quantize_rejects_bad_scale():
    with pytest.raises(ValueError):
        quantize(np.zeros(3), scale=0.0)


def test_dequantize_inverse_scaling():
    q = np.array([-5.0, 0.0, 7.0])
    np.testing.assert_allclose(dequantize(q, 0.5), [-2.5, 0.0, 3.5])


def test_observe_freeze_covers_range(rng):
    quant = SymmetricQuantizer(8)
    quant.observe(rng.normal(size=50) * 3.0)
    quant.observe(np.array([10.0]))
    scale = quant.freeze()
    assert scale == pytest.approx(10.0 / 127.0)


def test_freeze_without_observation_defaults():
    quant = SymmetricQuantizer(8)
    assert quant.freeze() == pytest.approx(1.0 / 127.0)


def test_sticky_scale_frozen_on_first_use(rng):
    quant = SymmetricQuantizer(8)
    assert not quant.calibrated
    quant.quantize(np.array([4.0, -2.0]))
    first_scale = quant.scale
    assert quant.calibrated
    quant.quantize(np.array([100.0]))  # later tensors do not change the scale
    assert quant.scale == first_scale


def test_dequantize_before_calibration_raises():
    with pytest.raises(RuntimeError):
        SymmetricQuantizer(8).dequantize(np.zeros(1))


def test_minimum_bits():
    with pytest.raises(ValueError):
        SymmetricQuantizer(1)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    bits=st.sampled_from([4, 8]),
    peak=st.floats(0.01, 1000.0),
)
def test_quantization_error_bound(seed, bits, peak):
    """|x - dequant(quant(x))| <= scale/2 for in-range values."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-peak, peak, size=64)
    quant = SymmetricQuantizer(bits)
    quant.observe(x)
    scale = quant.freeze()
    err = np.abs(quant.dequantize(quant.quantize(x)) - x)
    assert err.max() <= scale / 2 + 1e-12


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_quantize_idempotent_on_grid(seed):
    """Quantizing an already-quantized value is exact (paper Sec. III-B)."""
    rng = np.random.default_rng(seed)
    quant = SymmetricQuantizer(8)
    x = rng.normal(size=32)
    quant.observe(x)
    quant.freeze()
    q = quant.quantize(x)
    q2 = quant.quantize(quant.dequantize(q))
    np.testing.assert_array_equal(q, q2)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_shared_scale_difference_is_integer(seed):
    """The cornerstone of Ditto: diffs of same-scale quantizations are ints."""
    rng = np.random.default_rng(seed)
    quant = SymmetricQuantizer(8)
    a = rng.normal(size=64)
    b = a + rng.normal(0.0, 0.05, size=64)
    quant.observe(a)
    quant.observe(b)
    quant.freeze()
    d = quant.quantize(a) - quant.quantize(b)
    assert np.array_equal(d, np.rint(d))
    assert np.abs(d).max() <= 255


def test_observe_rejects_non_finite():
    quant = SymmetricQuantizer(8)
    with pytest.raises(ValueError):
        quant.observe(np.array([1.0, np.nan]))
    with pytest.raises(ValueError):
        quant.observe(np.array([np.inf]))


def test_observe_empty_is_noop():
    quant = SymmetricQuantizer(8)
    quant.observe(np.array([]))
    assert quant.freeze() == pytest.approx(1.0 / 127.0)
