"""Regression tests: float32 in -> float32 out on the hot numeric modules.

The NEP-50 leak class RPL001 guards against: a numpy float64 *scalar*
(e.g. ``np.sqrt(python_float)``) is "strong" and silently promotes float32
arrays, re-widening the float32 calibration fast path.  These tests pin the
contract per module so a reintroduced leak fails immediately, not just in
the linter.
"""

import numpy as np
import pytest

from repro.diffusion import DiffusionSchedule
from repro.diffusion.samplers import make_sampler
from repro.nn import functional as F
from repro.nn.embeddings import LabelEmbedding, PatchEmbed, TimestepEmbedding


@pytest.fixture
def schedule():
    return DiffusionSchedule(num_train_steps=100)


def _cast_params(module, dt):
    for _, param in module.named_parameters():
        param.data = param.data.astype(dt)


# ---------------------------------------------------------------------------
# diffusion/schedule.py
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_add_noise_preserves_dtype(schedule, dtype):
    rng = np.random.default_rng(0)
    x0 = np.ones((1, 2, 4, 4), dtype=dtype)
    x_t, eps = schedule.add_noise(x0, 50, rng)
    assert x_t.dtype == dtype
    assert eps.dtype == dtype


# ---------------------------------------------------------------------------
# diffusion/samplers.py
# ---------------------------------------------------------------------------


def _run_steps(sampler, dtype, n_steps=4, needs_rng=False):
    rng = np.random.default_rng(1)
    x = rng.standard_normal((1, 2, 4, 4)).astype(dtype)
    for index in range(n_steps):
        eps = rng.standard_normal(x.shape).astype(dtype)
        x = sampler.step(eps, index, x, rng=rng if needs_rng else None)
        assert x.dtype == dtype, f"step {index} promoted to {x.dtype}"
    return x


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_ddim_preserves_dtype(schedule, dtype):
    _run_steps(make_sampler("ddim", schedule, 10), dtype)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_stochastic_ddim_preserves_dtype(schedule, dtype):
    sampler = make_sampler("ddim", schedule, 10, eta=0.5)
    _run_steps(sampler, dtype, needs_rng=True)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_ddpm_preserves_dtype(schedule, dtype):
    # n_steps=10 walks through to the final (noise-free mean) step as well.
    sampler = make_sampler("ddpm", schedule, 10)
    _run_steps(sampler, dtype, n_steps=10, needs_rng=True)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_plms_preserves_dtype(schedule, dtype):
    # 4+ steps exercise every Adams-Bashforth history branch (warmup, 1, 2, 3+).
    sampler = make_sampler("plms", schedule, 10)
    _run_steps(sampler, dtype, n_steps=5)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_dpmpp_preserves_dtype(schedule, dtype):
    # 10 steps reach the final clean-data jump plus the 2M correction path.
    sampler = make_sampler("dpmpp", schedule, 10)
    _run_steps(sampler, dtype, n_steps=10)


def test_samplers_unchanged_on_float64(schedule):
    # The math.*-for-np.* rewrite must be bit-exact on the legacy float64
    # path: both call the same correctly-rounded libm on a C double.
    rng = np.random.default_rng(7)
    x = rng.standard_normal((1, 2, 4, 4))
    eps = rng.standard_normal(x.shape)
    sampler = make_sampler("ddim", schedule, 10)
    a_bar = schedule.alpha_bar(int(sampler.timesteps[0]))
    a_bar_prev = schedule.alpha_bar(sampler.prev_timestep(0))
    x0 = (x - np.sqrt(1.0 - a_bar) * eps) / np.sqrt(a_bar)
    expected = np.sqrt(a_bar_prev) * x0 + np.sqrt(max(1.0 - a_bar_prev, 0.0)) * eps
    np.testing.assert_array_equal(sampler.step(eps, 0, x), expected)


# ---------------------------------------------------------------------------
# nn/embeddings.py
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_timestep_embedding_preserves_dtype(dtype):
    module = TimestepEmbedding(8, 16, rng=np.random.default_rng(0))
    _cast_params(module, dtype)
    prev = F.embedding_dtype()
    F.set_embedding_dtype(dtype)
    try:
        out = module(np.array([3.0, 7.0]))
    finally:
        F.set_embedding_dtype(prev)
    assert out.dtype == dtype


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_patch_embed_preserves_dtype(dtype):
    module = PatchEmbed(2, 8, patch=2, rng=np.random.default_rng(0))
    _cast_params(module, dtype)
    out = module(np.ones((1, 2, 4, 4), dtype=dtype))
    assert out.dtype == dtype


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_label_embedding_preserves_dtype(dtype):
    module = LabelEmbedding(4, 8, rng=np.random.default_rng(0))
    _cast_params(module, dtype)
    out = module(np.array([1, 3]))
    assert out.dtype == dtype
