"""End-to-end bit-exactness: the Ditto algorithm never changes the output.

This is the reproduction's strongest correctness statement (paper Section
IV: "ensuring numerical equivalent results with original operations"): a
full reverse-diffusion trajectory executed with temporal difference
processing produces *exactly* the samples of the dense quantized model, for
every model family - UNets, cross-attention UNets, and adaLN transformers.
"""

import numpy as np
import pytest

from repro.core.modes import ExecutionMode
from repro.diffusion import DiffusionSchedule, GenerationPipeline, make_sampler
from repro.models import UNet, build_dit, build_text_encoder
from repro.quant import quantize_model, reset_model_state, set_model_mode


def run_pipeline(qmodel, pipeline, mode, seed=9):
    """Run a trajectory with the given execution mode for steps >= 1."""
    reset_model_state(qmodel)
    calls = [0]
    original = pipeline.predict_noise

    def stepped(x, t):
        set_model_mode(qmodel, ExecutionMode.DENSE if calls[0] == 0 else mode)
        calls[0] += 1
        return original(x, t)

    pipeline.predict_noise = stepped
    try:
        return pipeline.generate(1, np.random.default_rng(seed))
    finally:
        pipeline.predict_noise = original


def small_unet(block_type, context_dim=None, seed=3):
    return UNet(
        in_channels=2,
        base_channels=8,
        channel_mults=(1, 2),
        attention_levels=(1,),
        block_type=block_type,
        context_dim=context_dim,
        rng=np.random.default_rng(seed),
    )


@pytest.mark.parametrize("sampler_name", ["ddim", "plms", "ddpm"])
def test_unet_temporal_bit_exact(sampler_name):
    qmodel = quantize_model(small_unet("attention"))
    schedule = DiffusionSchedule(100)
    sampler = make_sampler(sampler_name, schedule, 4)
    pipeline = GenerationPipeline(qmodel, sampler, (2, 8, 8))
    dense = run_pipeline(qmodel, pipeline, ExecutionMode.DENSE)
    temporal = run_pipeline(qmodel, pipeline, ExecutionMode.TEMPORAL)
    np.testing.assert_allclose(temporal, dense, rtol=1e-9, atol=1e-12)


def test_unet_spatial_bit_exact():
    qmodel = quantize_model(small_unet("attention"))
    sampler = make_sampler("ddim", DiffusionSchedule(100), 4)
    pipeline = GenerationPipeline(qmodel, sampler, (2, 8, 8))
    dense = run_pipeline(qmodel, pipeline, ExecutionMode.DENSE)
    spatial = run_pipeline(qmodel, pipeline, ExecutionMode.SPATIAL)
    np.testing.assert_allclose(spatial, dense, rtol=1e-9, atol=1e-12)


def test_cross_attention_unet_temporal_bit_exact():
    encoder = build_text_encoder()
    ctx = encoder.encode(["a white vase with yellow tulips"])
    qmodel = quantize_model(small_unet("transformer", context_dim=16))
    sampler = make_sampler("ddim", DiffusionSchedule(100), 4)
    pipeline = GenerationPipeline(
        qmodel, sampler, (2, 8, 8), conditioning={"context": ctx}
    )
    dense = run_pipeline(qmodel, pipeline, ExecutionMode.DENSE)
    temporal = run_pipeline(qmodel, pipeline, ExecutionMode.TEMPORAL)
    np.testing.assert_allclose(temporal, dense, rtol=1e-9, atol=1e-12)


def test_dit_temporal_bit_exact():
    qmodel = quantize_model(build_dit())
    sampler = make_sampler("ddim", DiffusionSchedule(100), 3)
    pipeline = GenerationPipeline(
        qmodel, sampler, (4, 16, 16), conditioning={"y": np.array([1])}
    )
    dense = run_pipeline(qmodel, pipeline, ExecutionMode.DENSE)
    temporal = run_pipeline(qmodel, pipeline, ExecutionMode.TEMPORAL)
    np.testing.assert_allclose(temporal, dense, rtol=1e-9, atol=1e-12)


def test_quantized_close_to_fp32():
    """8-bit quantization stays close to the FP32 trajectory (Table II)."""
    from repro.metrics import snr_db
    from repro.quant import calibrate_model

    fp = small_unet("attention")
    sampler = make_sampler("ddim", DiffusionSchedule(100), 4)
    pipeline = GenerationPipeline(fp, sampler, (2, 8, 8))
    reference = pipeline.generate(1, np.random.default_rng(5))
    scales = calibrate_model(fp, lambda: pipeline.generate(1, np.random.default_rng(6)))
    qmodel = quantize_model(fp, calibration=scales)
    pipeline.model = qmodel
    reset_model_state(qmodel)
    quantized = pipeline.generate(1, np.random.default_rng(5))
    assert snr_db(reference, quantized) > 10.0


def test_batched_trajectory_bit_exact():
    """Temporal processing differences each batch element against itself."""
    qmodel = quantize_model(small_unet("attention", seed=8))
    sampler = make_sampler("ddim", DiffusionSchedule(100), 3)
    pipeline = GenerationPipeline(qmodel, sampler, (2, 8, 8))

    def run(mode, batch):
        reset_model_state(qmodel)
        calls = [0]
        original = pipeline.predict_noise

        def stepped(x, t):
            set_model_mode(
                qmodel, ExecutionMode.DENSE if calls[0] == 0 else mode
            )
            calls[0] += 1
            return original(x, t)

        pipeline.predict_noise = stepped
        try:
            return pipeline.generate(batch, np.random.default_rng(2))
        finally:
            pipeline.predict_noise = original

    dense = run(ExecutionMode.DENSE, batch=4)
    temporal = run(ExecutionMode.TEMPORAL, batch=4)
    np.testing.assert_allclose(temporal, dense, rtol=1e-9, atol=1e-12)
    # Batch elements evolve independently of one another.
    assert not np.allclose(dense[0], dense[1])
