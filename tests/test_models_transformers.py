"""Unit tests for DiT, Latte, the toy VAE and the toy text encoder."""

import numpy as np
import pytest

from repro.models import DiT, DiTBlock, Latte, ToyTextEncoder
from repro.models.zoo import build_dit, build_latte, build_text_encoder, build_vae


def test_dit_block_shapes(rng):
    block = DiTBlock(16, num_heads=2, rng=rng)
    x = rng.normal(size=(2, 9, 16))
    cond = rng.normal(size=(2, 16))
    assert block(x, cond).shape == x.shape


def test_dit_forward_shape():
    model = build_dit()
    x = np.random.default_rng(0).standard_normal((1, 4, 16, 16))
    out = model(x, np.array([10.0]), y=np.array([1]))
    assert out.shape == x.shape


def test_dit_unpatchify_roundtrip(rng):
    model = DiT(in_channels=2, input_size=4, patch=2, dim=8, depth=2,
                num_heads=2, num_classes=3, rng=rng)
    tokens = rng.normal(size=(1, 4, 2 * 2 * 2))
    img = model.unpatchify(tokens)
    assert img.shape == (1, 2, 4, 4)
    # Token 0 carries patch (0,0): its values must land in the top-left 2x2.
    tokens2 = np.zeros_like(tokens)
    tokens2[0, 0] = 1.0
    img2 = model.unpatchify(tokens2)
    assert img2[0, :, :2, :2].sum() == pytest.approx(8.0)
    assert img2[0, :, 2:, :].sum() == 0.0


def test_dit_label_sensitivity():
    model = build_dit()
    x = np.random.default_rng(0).standard_normal((1, 4, 16, 16))
    a = model(x, np.array([10.0]), y=np.array([1]))
    b = model(x, np.array([10.0]), y=np.array([2]))
    assert not np.allclose(a, b)


def test_dit_rejects_indivisible_patch():
    with pytest.raises(ValueError):
        DiT(input_size=9, patch=2)


def test_latte_forward_shape():
    model = build_latte()
    x = np.random.default_rng(0).standard_normal((1, 4, 4, 16, 16))
    out = model(x, np.array([10.0]), y=np.array([1]))
    assert out.shape == x.shape


def test_latte_frame_count_checked():
    model = build_latte()
    x = np.zeros((1, 3, 4, 16, 16))
    with pytest.raises(ValueError):
        model(x, np.array([1.0]), y=np.array([0]))


def test_latte_requires_even_depth(rng):
    with pytest.raises(ValueError):
        Latte(depth=3, rng=rng)


def test_latte_temporal_mixing(rng):
    """Perturbing one frame must influence other frames (temporal blocks)."""
    model = Latte(in_channels=2, input_size=4, num_frames=3, patch=2,
                  dim=8, depth=2, num_heads=2, num_classes=3, rng=rng)
    x = rng.normal(size=(1, 3, 2, 4, 4))
    base = model(x, np.array([5.0]), y=np.array([0]))
    x2 = x.copy()
    x2[0, 0] += 1.0
    pert = model(x2, np.array([5.0]), y=np.array([0]))
    assert not np.allclose(base[0, 2], pert[0, 2])


def test_vae_roundtrip_shapes():
    vae = build_vae()
    imgs = np.random.default_rng(0).uniform(-1, 1, (2, 3, 16, 16))
    lat = vae.encode(imgs)
    assert lat.shape == (2, 4, 4, 4)
    rec = vae.decode(lat)
    assert rec.shape == imgs.shape
    assert np.abs(rec).max() <= 1.0  # tanh output


def test_text_encoder_determinism():
    enc = build_text_encoder()
    a = enc.encode(["a red bus"])
    b = enc.encode(["a red bus"])
    np.testing.assert_array_equal(a, b)
    c = enc.encode(["a blue bus"])
    assert not np.allclose(a, c)


def test_text_encoder_shape_and_padding():
    enc = ToyTextEncoder(dim=8, max_tokens=6)
    out = enc.encode(["one two", "a much longer prompt than six tokens here"])
    assert out.shape == (2, 6, 8)


def test_tokenize_pads_and_truncates():
    enc = ToyTextEncoder(max_tokens=4)
    short = enc.tokenize("hi")
    assert len(short) == 4 and short[1:].tolist() == [0, 0, 0]
    long = enc.tokenize("a b c d e f g")
    assert len(long) == 4
