"""Fault-tolerant serving: deadlines, cancellation, retries, crash recovery.

Unit tests pin the :mod:`repro.runtime.faults` primitives (the fault-spec
grammar, firing budgets, the replayable rng streams, SLO class parsing and
assignment); the end-to-end tests replay small traces through
``simulate_serving`` under injected faults and hold the serving tier to its
two contracts:

* **bit-exactness survives failure** - retried steps, evicted rows, and a
  killed-and-recovered session leave every surviving request bit-exact with
  its seeded batch-1 reference (``verify_invariance`` raises otherwise);
* **accounting is total and deterministic** - every request ends in exactly
  one of completed/cancelled/expired/failed, and replaying the same fault
  plan twice produces identical outcome accounting.
"""

import numpy as np
import pytest

from repro.runtime import faults
from repro.runtime.cache import ResultCache
from repro.runtime.faults import (
    CancelToken,
    FaultPlan,
    InjectedFault,
    ReplayableRNG,
    SessionKilled,
)
from repro.runtime.serving import (
    SLOClass,
    assign_slo_classes,
    generate_requests,
    parse_slo_spec,
    simulate_serving,
    _verify_continuous,
)

from helpers import make_tiny_engine, make_tiny_spec


# -- fault-spec grammar ------------------------------------------------------

def test_fault_spec_parses_entries():
    plan = FaultPlan.from_spec(
        "error@req=1,step=2; kill@step=3,times=*;"
        "delay@req=5,step=1,ms=30000; cancel@req=2,at=0.5;"
        "corrupt@read=*,times=2"
    )
    kinds = [e.kind for e in plan.entries]
    assert kinds == ["error", "kill", "delay", "cancel", "corrupt"]
    error, kill, delay, cancel, corrupt = plan.entries
    assert (error.req, error.step, error.times) == (1, 2, 1)
    assert (kill.req, kill.step, kill.times) == (None, 3, None)
    assert (delay.req, delay.step, delay.ms) == (5, 1, 30000.0)
    assert (cancel.req, cancel.at, cancel.step) == (2, 0.5, None)
    assert (corrupt.read, corrupt.times) == (None, 2)


@pytest.mark.parametrize(
    "spec, match",
    [
        ("explode@step=1", "kind"),
        ("error", "kind"),
        ("error@req=1", "needs step"),
        ("delay@step=1", "ms=M > 0"),
        ("cancel@req=1", "exactly one"),
        ("cancel@req=1,at=0.5,step=2", "exactly one"),
        ("cancel@at=0.5", "needs req"),
        ("error@step=1,p=2.0", "p must be"),
        ("error@step=1,boom=3", "unknown key"),
        ("error@step", "key=value"),
        ("error@step=1,times=soon", "int or"),
    ],
)
def test_fault_spec_rejects_bad_entries(spec, match):
    with pytest.raises(ValueError, match=match):
        FaultPlan.from_spec(spec)


def test_request_coordinate_fires_per_row_step():
    # req=0,step=1 with times=2: matches whenever request 0 sits at row-step
    # 1 - which a *retried* attempt does too (the row did not advance), so
    # the budget meters exactly how many attempts fail.
    plan = FaultPlan.from_spec("error@req=0,step=1,times=2")
    plan.on_step_attempt([0], [0])  # wrong row-step: no fire
    with pytest.raises(InjectedFault):
        plan.on_step_attempt([0], [1])
    with pytest.raises(InjectedFault):
        plan.on_step_attempt([0], [1])  # the retry fails too
    plan.on_step_attempt([0], [1])  # budget spent: the third attempt runs


def test_global_attempt_coordinate_counts_attempts():
    # Bare step=S addresses the S-th step *attempt* of the drain.
    plan = FaultPlan.from_spec("kill@step=1")
    plan.on_step_attempt([7], [3])
    with pytest.raises(SessionKilled):
        plan.on_step_attempt([7], [3])
    plan.on_step_attempt([7], [3])
    assert plan.step_attempts == 3


def test_session_killed_is_an_injected_fault():
    assert issubclass(SessionKilled, InjectedFault)
    assert issubclass(InjectedFault, RuntimeError)


def test_probabilistic_entries_are_seed_deterministic():
    def firing_pattern(seed):
        plan = FaultPlan.from_spec("error@req=0,step=0,times=*,p=0.5", seed=seed)
        fired = []
        for _ in range(32):
            try:
                plan.on_step_attempt([0], [0])
                fired.append(False)
            except InjectedFault:
                fired.append(True)
        return fired

    a, b = firing_pattern(3), firing_pattern(3)
    assert a == b  # same (spec, seed) -> same schedule
    assert any(a) and not all(a)  # p=0.5 really is probabilistic


def test_service_delay_matches_attempt_and_row():
    plan = FaultPlan.from_spec("delay@req=2,step=1,ms=500")
    plan.on_step_attempt([2, 3], [0, 0])
    assert plan.service_delay_s([2, 3], [0, 0]) == 0.0
    plan.on_step_attempt([2, 3], [1, 1])
    assert plan.service_delay_s([2, 3], [1, 1]) == pytest.approx(0.5)
    plan.on_step_attempt([2, 3], [1, 2])
    assert plan.service_delay_s([2, 3], [1, 2]) == 0.0  # budget spent


def test_cancellations_by_time_and_step():
    plan = FaultPlan.from_spec("cancel@req=0,at=1.5;cancel@req=1,step=2")
    assert plan.cancellations(0.0, {0: 0, 1: 0}) == []
    assert plan.cancellations(2.0, {0: 1, 1: 1}) == [0]
    assert plan.cancellations(2.0, {0: 1, 1: 1}) == []  # budget spent
    assert plan.cancellations(2.0, {1: 2}) == [1]
    # Entries for requests no longer in flight never fire.
    assert plan.cancellations(9.0, {}) == []


def test_corrupt_cache_read_indexing():
    plan = FaultPlan.from_spec("corrupt@read=1")
    assert [plan.corrupt_cache_read() for _ in range(3)] == [False, True, False]
    every = FaultPlan.from_spec("corrupt@read=*,times=2")
    assert [every.corrupt_cache_read() for _ in range(3)] == [True, True, False]


# -- replayable rng streams --------------------------------------------------

def test_replayable_rng_capture_restore_is_exact():
    rng = ReplayableRNG(np.random.default_rng(7))
    rng.standard_normal((1, 4))
    snap = rng.capture_state()
    a = rng.standard_normal((1, 4))
    assert rng.draws == 2
    rng.restore_state(snap)
    assert rng.draws == 1
    np.testing.assert_array_equal(rng.standard_normal((1, 4)), a)


def test_replayable_rng_fast_forward_matches_draws():
    shape = (1, 3, 2)
    lived = ReplayableRNG(np.random.default_rng(11))
    for _ in range(4):
        lived.standard_normal(shape)
    recovered = ReplayableRNG(np.random.default_rng(11))
    recovered.fast_forward(lived.draws, shape)
    assert recovered.draws == lived.draws
    np.testing.assert_array_equal(
        recovered.standard_normal(shape), lived.standard_normal(shape)
    )


def test_capture_restore_handles_plain_generators_and_none():
    rng = np.random.default_rng(5)
    snap = faults.capture_rng_state(rng)
    a = rng.standard_normal(4)
    faults.restore_rng_state(rng, snap)
    np.testing.assert_array_equal(rng.standard_normal(4), a)
    assert faults.capture_rng_state(None) is None
    faults.restore_rng_state(None, None)  # no-op


def test_cancel_token():
    token = CancelToken()
    assert not token.cancelled
    token.cancel("user hung up")
    assert token.cancelled
    assert token.reason == "user hung up"


# -- ambient plan ------------------------------------------------------------

def test_install_stack_and_env_fallback(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert faults.active() is None
    plan = FaultPlan.from_spec("error@step=0")
    with faults.install(plan) as installed:
        assert installed is plan
        assert faults.active() is plan
        inner = FaultPlan.from_spec("kill@step=0")
        with faults.install(inner):
            assert faults.active() is inner
        assert faults.active() is plan
    assert faults.active() is None
    with faults.install(None) as nothing:  # no-op context
        assert nothing is None
        assert faults.active() is None
    monkeypatch.setenv("REPRO_FAULTS", "corrupt@read=*")
    ambient = faults.active()
    assert ambient is not None
    assert ambient.entries[0].kind == "corrupt"
    # Memoized per spec string: budgets span the process for env plans.
    assert faults.active() is ambient
    with faults.install(plan):  # an installed plan shadows the env
        assert faults.active() is plan


# -- SLO classes -------------------------------------------------------------

def test_parse_slo_spec():
    classes = parse_slo_spec("interactive:0.5:2,batch::1,bulk:none")
    assert [c.name for c in classes] == ["interactive", "batch", "bulk"]
    assert [c.deadline_s for c in classes] == [0.5, None, None]
    assert [c.weight for c in classes] == [2.0, 1.0, 1.0]


@pytest.mark.parametrize(
    "spec, match",
    [
        ("", "no classes"),
        (":0.5", "expected"),
        ("a:0.5:1:9", "expected"),
        ("a:-1", "deadline"),
        ("a:1:0", "weight"),
        ("a:1,a:2", "repeats"),
    ],
)
def test_parse_slo_spec_rejects(spec, match):
    with pytest.raises(ValueError, match=match):
        parse_slo_spec(spec)


def test_assign_slo_classes_dhondt():
    classes = parse_slo_spec("batch::5,interactive:10:1")
    assigned = assign_slo_classes(6, classes)
    assert [c.name for c in assigned] == ["batch"] * 5 + ["interactive"]
    # Deterministic: the assignment is part of the trace.
    assert assign_slo_classes(6, classes) == assigned


def test_generate_requests_carries_slo_classes():
    classes = [SLOClass("fast", 0.25, 3.0), SLOClass("slow", None, 1.0)]
    reqs = generate_requests(4, pattern="burst", slo=classes)
    assert [r.slo_class for r in reqs] == ["fast", "fast", "fast", "slow"]
    assert [r.deadline_s for r in reqs] == [0.25, 0.25, 0.25, None]


# -- corrupted cache reads self-heal ----------------------------------------

def test_corrupt_cache_read_self_heals(tmp_path):
    cache = ResultCache(cache_dir=tmp_path)
    cache.put("ab" * 32, {"x": 1})
    with faults.install(FaultPlan.from_spec("corrupt@read=0")):
        assert cache.get("ab" * 32) is None  # scribbled, dropped, miss
    assert cache.stats.corrupt == 1
    assert not cache.path_for("ab" * 32).exists()  # entry unlinked
    cache.put("ab" * 32, {"x": 2})  # recompute-and-overwrite path
    assert cache.get("ab" * 32) == {"x": 2}


# -- session-level recovery primitives ---------------------------------------

def test_session_kill_marks_unhealthy_and_refuses_progress():
    engine = make_tiny_engine(sampler="ddpm", num_steps=3)
    shape = (1,) + engine.pipeline.sample_shape
    noise = np.random.default_rng(0).standard_normal(shape)
    session = engine.open_session()
    session.admit(noise, rng=np.random.default_rng(1), tag=0)
    with faults.install(FaultPlan.from_spec("kill@step=0")):
        with pytest.raises(SessionKilled):
            session.step()
    assert not session.healthy
    assert "injected session kill" in session.unhealthy_reason
    with pytest.raises(RuntimeError, match="unhealthy"):
        session.step()
    with pytest.raises(RuntimeError, match="unhealthy"):
        session.admit(noise, rng=np.random.default_rng(2), tag=1)
    # The rows stay readable for recovery; only forward progress is refused.
    [(tag, step, x)] = session.snapshot()
    assert (tag, step) == (0, 0)
    np.testing.assert_array_equal(x, noise)
    session.close()


def test_snapshot_readmission_into_fresh_session_bit_exact():
    """The crash-recovery primitive in isolation: snapshot mid-flight rows,
    close the session, re-admit each latent at its recorded step on a fresh
    session with a fast-forwarded stream - bit-exact with the uninterrupted
    batch-1 run."""
    engine = make_tiny_engine(sampler="ddpm", num_steps=4)
    shape = (1,) + engine.pipeline.sample_shape

    def stream(i):
        return np.random.default_rng(np.random.SeedSequence(9, spawn_key=(i,)))

    noises = [np.random.default_rng(20 + i).standard_normal(shape) for i in range(2)]
    session = engine.open_session()
    streams = {}
    for i in range(2):
        streams[i] = ReplayableRNG(stream(i))
        session.admit(noises[i], rng=streams[i], tag=i)
    session.step()  # both rows advance to step 1 (one draw each)
    inflight = session.snapshot()
    draws = {tag: streams[tag].draws for tag, _, _ in inflight}
    session.close()  # the "crash"

    out = {}
    fresh = engine.open_session()
    for tag, step_k, x_k in inflight:
        rng = ReplayableRNG(stream(tag))  # rebuilt from the seed...
        rng.fast_forward(draws[tag], shape)  # ...past the recorded draws
        fresh.admit(x_k, rng=rng, tag=tag, step=step_k)
    out.update(fresh.run_to_completion())
    fresh.close()

    for i in range(2):
        reference = engine.run(
            x_init=noises[i], record_trace=False, rngs=[stream(i)]
        ).samples
        np.testing.assert_array_equal(out[i], reference)


def test_session_admit_validates_step_range():
    engine = make_tiny_engine(num_steps=3)
    shape = (1,) + engine.pipeline.sample_shape
    with engine.open_session() as session:
        with pytest.raises(ValueError, match=r"\[0, 3\)"):
            session.admit(np.zeros(shape), step=3)
        with pytest.raises(ValueError, match=r"\[0, 3\)"):
            session.admit(np.zeros(shape), step=-1)


# -- end to end: faults through the continuous scheduler ---------------------

def _nonzero_counts(batch):
    """outcome_counts() without the zero entries (it keys every outcome)."""
    return {name: n for name, n in batch.outcome_counts().items() if n}


def _chaos_serve(fault_spec, *, sampler="ddpm", verify=True, **kwargs):
    """A 3-request burst trace at capacity 2 over a 3-step tiny engine."""
    defaults = dict(
        batch_sizes=(2,),
        num_requests=3,
        rate_rps=50.0,
        pattern="burst",
        seed=1,
        calibrate=False,
        scheduler="continuous",
        sampler=sampler,
        fault_spec=fault_spec,
        verify_invariance=verify,
    )
    defaults.update(kwargs)
    return simulate_serving(make_tiny_spec("tinyFaults", num_steps=3), **defaults)


def test_step_error_retried_bit_exact(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = _chaos_serve("error@req=0,step=1")
    batch = report.per_batch[2]
    assert batch.retries == 1
    assert batch.recoveries == 0
    assert _nonzero_counts(batch) == {"completed": 3}
    assert report.verified_requests == [0, 1, 2]  # bit-exact despite the retry
    assert "fault plan: error@req=0,step=1" in report.summary()
    assert "1 retried step(s), 0 session recovery(ies)" in report.summary()


def test_session_kill_recovers_bit_exact(monkeypatch, tmp_path):
    """The tentpole acceptance check: an injected mid-run session kill is
    recovered by rebuilding the engine (warm from the content-addressed
    cache) and re-admitting every in-flight row from its seed at its
    recorded step with its stream fast-forwarded - and --verify proves the
    recovered outputs bit-exact."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = _chaos_serve("kill@req=1,step=1")
    batch = report.per_batch[2]
    assert batch.recoveries == 1
    assert _nonzero_counts(batch) == {"completed": 3}
    assert report.verified_requests == [0, 1, 2]
    # The recovery warmed the engine-object cache for the next rebuild.
    assert ResultCache(cache_dir=tmp_path).entry_count() >= 1


def test_recovery_disabled_fails_inflight_rows():
    report = _chaos_serve(
        "error@req=0,step=1,times=*",
        sampler=None,  # deterministic ddim: no streams to rebuild
        verify=False,
        max_retries=1,
        recover=False,
    )
    batch = report.per_batch[2]
    # Retries exhausted with recovery off: both in-flight rows fail, the
    # queued request then completes on a fresh session.
    assert batch.retries == 1
    assert batch.recoveries == 0
    assert _nonzero_counts(batch) == {"failed": 2, "completed": 1}
    assert batch.outcomes == {0: "failed", 1: "failed", 2: "completed"}


def test_injected_delay_expires_deadlines():
    report = _chaos_serve(
        "delay@step=0,ms=5000",
        sampler=None,
        verify=False,
        deadline_s=1.0,
    )
    batch = report.per_batch[2]
    # The 5 s injected latency lands on the simulated clock after the first
    # step: the two in-flight rows blow their 1 s deadline at the next
    # boundary and the queued request is already expired at admission.
    assert _nonzero_counts(batch) == {"expired": 3}
    (cls,) = batch.slo
    assert (cls.total, cls.expired, cls.completed) == (3, 3, 0)
    assert cls.goodput == 0.0
    assert cls.abandonment == 1.0
    assert np.isnan(cls.latency_p99_s)


def test_verify_refuses_when_nothing_completed():
    with pytest.raises(AssertionError, match="nothing to check"):
        _chaos_serve("delay@step=0,ms=5000", sampler=None, deadline_s=1.0)


def test_cancel_evicts_mid_flight_survivors_exact(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = _chaos_serve("cancel@req=1,step=1")
    batch = report.per_batch[2]
    assert batch.outcomes[1] == "cancelled"
    assert _nonzero_counts(batch) == {"completed": 2, "cancelled": 1}
    # The cancelled row's eviction must not perturb the survivors.
    assert report.verified_requests == [0, 2]
    assert "2 completed request(s) verified bit-exact" in report.summary()


def test_same_fault_plan_twice_identical_accounting(monkeypatch, tmp_path):
    """The determinism pin: replaying the same trace under the same fault
    plan yields identical outcome accounting (timings excluded - they are
    measured, the accounting is simulated)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    spec = "error@req=0,step=1;kill@req=1,step=2;cancel@req=2,step=1"
    slo = "batch::2,interactive:10:1"

    def accounting():
        report = _chaos_serve(spec, slo=slo, verify=False)
        batch = report.per_batch[2]
        return {
            "outcomes": batch.outcomes,
            "counts": batch.outcome_counts(),
            "retries": batch.retries,
            "recoveries": batch.recoveries,
            "slo": [
                (c.name, c.total, c.completed, c.expired, c.cancelled, c.failed)
                for c in batch.slo
            ],
        }

    first, second = accounting(), accounting()
    assert first == second
    assert first["recoveries"] == 1
    assert sum(first["counts"].values()) == 3  # every request accounted


def test_slo_accounting_is_total(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = _chaos_serve(
        "kill@req=0,step=1;cancel@req=2,step=1",
        slo="batch::2,interactive:10:1",
        verify=False,
    )
    batch = report.per_batch[2]
    for cls in batch.slo:
        assert cls.total == cls.completed + cls.expired + cls.cancelled + cls.failed
    assert sum(c.total for c in batch.slo) == 3
    assert "SLO accounting" in report.summary()
    payload = report.per_batch[2].to_json()
    assert {entry["name"] for entry in payload["slo"]} == {"batch", "interactive"}


def test_fault_spec_requires_continuous_scheduler():
    with pytest.raises(ValueError, match="continuous"):
        simulate_serving(
            make_tiny_spec("tinyFixedFault", num_steps=2),
            batch_sizes=(2,),
            num_requests=2,
            calibrate=False,
            scheduler="fixed",
            fault_spec="error@step=0",
        )


def test_env_fault_spec_reaches_simulate_serving(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "error@step=0")
    with pytest.raises(ValueError, match="continuous"):
        simulate_serving(
            make_tiny_spec("tinyEnvFault", num_steps=2),
            batch_sizes=(2,),
            num_requests=2,
            calibrate=False,
            scheduler="fixed",
        )


# -- verify failure reporting (satellite a) ----------------------------------

def test_verify_failure_names_request_and_deviation():
    engine = make_tiny_engine(num_steps=2)
    requests = generate_requests(2, pattern="burst", seed=0)
    noises = [r.draw_noise(engine.pipeline.sample_shape) for r in requests]
    good = {
        r.req_id: engine.run(x_init=n, record_trace=False).samples
        for r, n in zip(requests, noises)
    }
    outcomes = {0: "completed", 1: "completed"}
    assert _verify_continuous("tiny", engine, requests, noises, good, outcomes) == [0, 1]
    bad = dict(good)
    bad[1] = bad[1] + 1e-3
    with pytest.raises(AssertionError) as err:
        _verify_continuous("tiny", engine, requests, noises, bad, outcomes)
    message = str(err.value)
    assert "request 1" in message
    assert "2 steps" in message
    assert "max |delta|=" in message and "max rel=" in message


def test_verify_reports_lost_and_sampleless_requests():
    engine = make_tiny_engine(num_steps=2)
    requests = generate_requests(2, pattern="burst", seed=0)
    noises = [r.draw_noise(engine.pipeline.sample_shape) for r in requests]
    with pytest.raises(AssertionError, match=r"lost requests \[1\]"):
        _verify_continuous("tiny", engine, requests, noises, {}, {0: "completed"})
    outcomes = {0: "completed", 1: "cancelled"}
    with pytest.raises(AssertionError, match="no sample"):
        _verify_continuous("tiny", engine, requests, noises, {}, outcomes)


# -- CLI surface -------------------------------------------------------------

def test_cli_serve_fault_flags_smoke(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.cli import main

    code = main(
        [
            "serve", "DDPM", "--steps", "3", "--requests", "3",
            "--batch-sizes", "2", "--scheduler", "continuous",
            "--pattern", "burst", "--verify",
            "--slo", "batch::2,interactive:10:1",
            "--fault-spec", "error@req=0,step=1;kill@req=1,step=2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "fault plan:" in out
    assert "SLO accounting" in out
    assert "session recovery(ies)" in out
    assert "verified bit-exact" in out
