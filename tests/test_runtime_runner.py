"""EngineRunner integration tests: caching, parallel fan-out, recovery."""

import numpy as np
import pytest

from repro.core.engine import EngineResult
from repro.runtime import EngineRunner, engine_key

from helpers import TINY_SUITE, make_tiny_spec


@pytest.fixture
def runner(tmp_path):
    return EngineRunner(jobs=1, cache=True, cache_dir=tmp_path / "cache")


def test_run_benchmark_miss_then_hit(runner):
    spec = make_tiny_spec()
    first = runner.run_benchmark(spec, seed=2)
    assert isinstance(first, EngineResult)
    assert runner.stats.misses == 1
    assert runner.stats.stores == 1
    second = runner.run_benchmark(spec, seed=2)
    assert runner.stats.hits == 1
    assert runner.stats.stores == 1  # no recompute, no rewrite
    assert second.num_model_calls == first.num_model_calls
    np.testing.assert_allclose(second.samples, first.samples)
    assert len(second.rich_trace) == len(first.rich_trace)


def test_build_engine_caches_engine_objects(runner):
    """Crash recovery's warm path: the second build of the same spec loads
    the pickled DittoEngine instead of requantizing, and the rebuilt engine
    reproduces the original's samples bit-exactly."""
    spec = make_tiny_spec()
    first = runner.build_engine(spec, calibrate=False)
    assert runner.stats.misses == 1
    assert runner.stats.stores == 1
    second = runner.build_engine(spec, calibrate=False)
    assert runner.stats.hits == 1
    assert second is not first  # a fresh unpickled object, not the same one
    np.testing.assert_array_equal(
        first.run(record_trace=False, seed=4).samples,
        second.run(record_trace=False, seed=4).samples,
    )
    # A different build configuration misses.
    runner.build_engine(spec, calibrate=False, sampler="ddpm")
    assert runner.stats.misses == 2


def test_build_engine_resolves_names_and_steps(runner):
    engine = runner.build_engine("DDPM", num_steps=2, calibrate=False)
    assert len(engine.pipeline.sampler.timesteps) == 2


def test_second_session_skips_engine_reconstruction(tmp_path):
    """A fresh runner over the same cache dir models a second sweep/session."""
    spec = make_tiny_spec()
    warm = EngineRunner(cache_dir=tmp_path / "cache")
    warm.run_benchmark(spec)
    cold = EngineRunner(cache_dir=tmp_path / "cache")
    result = cold.run_benchmark(spec)
    assert cold.stats.hits == 1
    assert cold.stats.misses == 0  # pure cache lookup, engine never rebuilt
    assert isinstance(result, EngineResult)


def test_run_suite_parallel_smoke(tmp_path):
    """Two tiny benchmarks fanned out across two worker processes."""
    runner = EngineRunner(jobs=2, cache=True, cache_dir=tmp_path / "cache")
    results = runner.run_suite(TINY_SUITE, seed=0)
    assert sorted(results) == ["tinyA", "tinyB"]
    for spec in TINY_SUITE:
        result = results[spec.name]
        assert result.num_model_calls == spec.num_steps
        assert result.rich_trace.num_steps() == spec.num_steps
        assert len(result.rich_trace) > 0
    # Worker-side stats were merged back into the parent runner.
    assert runner.stats.misses == 2
    assert runner.stats.stores == 2
    # Second suite run is served from cache without touching the pool.
    again = runner.run_suite(TINY_SUITE, seed=0)
    assert runner.stats.hits == 2
    np.testing.assert_allclose(
        again["tinyA"].samples, results["tinyA"].samples
    )


def test_parallel_results_match_serial(tmp_path):
    parallel = EngineRunner(jobs=2, cache_dir=tmp_path / "par")
    serial = EngineRunner(jobs=1, cache_dir=tmp_path / "ser")
    fanned = parallel.run_suite(TINY_SUITE, seed=4)
    looped = serial.run_suite(TINY_SUITE, seed=4)
    for name in ("tinyA", "tinyB"):
        np.testing.assert_allclose(fanned[name].samples, looped[name].samples)
        assert fanned[name].rich_trace.total_macs() == looped[name].rich_trace.total_macs()


def test_runner_recovers_from_corrupted_entry(runner):
    spec = make_tiny_spec()
    first = runner.run_benchmark(spec)
    key = engine_key(
        spec,
        num_steps=spec.num_steps,  # the runner normalizes None to this
        calibrate=True,
        calibration_seed=11,
        step_clusters=1,
        seed=0,
        batch_size=1,
    )
    path = runner.cache.path_for(key)
    assert path.exists()
    path.write_bytes(b"truncated garbage")
    second = runner.run_benchmark(spec)
    assert runner.stats.corrupt == 1
    np.testing.assert_allclose(second.samples, first.samples)


def test_no_cache_mode_always_recomputes(tmp_path):
    runner = EngineRunner(cache=False, cache_dir=tmp_path / "cache")
    spec = make_tiny_spec()
    runner.run_benchmark(spec)
    runner.run_benchmark(spec)
    assert runner.stats.hits == 0
    assert runner.stats.stores == 0
    assert not (tmp_path / "cache").exists()


def test_default_steps_share_key_with_explicit_default(runner):
    spec = make_tiny_spec(num_steps=3)
    runner.run_benchmark(spec)               # num_steps=None -> resolves to 3
    runner.run_benchmark(spec, num_steps=3)  # explicitly the spec default
    assert runner.stats.hits == 1
    assert runner.stats.stores == 1  # one entry, not a duplicate


def test_similarity_is_cached(runner):
    spec = make_tiny_spec()
    report = runner.similarity(spec)
    assert runner.stats.misses == 1
    again = runner.similarity(spec)
    assert runner.stats.hits == 1
    assert report.benchmark == "tinyA"
    assert again.avg_temporal == pytest.approx(report.avg_temporal)
    suite_reports = runner.similarity_suite([spec])
    assert runner.stats.hits == 2  # suite path reuses the same entry
    assert suite_reports["tinyA"].avg_temporal == pytest.approx(
        report.avg_temporal
    )


def test_run_batch_sizes_cached_fanout(tmp_path):
    """The batch-size axis fans out and caches like the benchmark axis."""
    runner = EngineRunner(jobs=2, cache=True, cache_dir=tmp_path / "cache")
    spec = make_tiny_spec()
    results = runner.run_batch_sizes(spec, batch_sizes=(2, 1), seed=3)
    assert sorted(results) == [1, 2]
    for size, result in results.items():
        assert result.samples.shape[0] == size
    assert runner.stats.misses == 2
    # Per-batch-element invariance: batch-2 row 0 is NOT generally row 0 of
    # the batch-1 run (different initial noise draw), but re-running batch-2
    # hits the cache and reproduces identical samples.
    again = runner.run_batch_sizes(spec, batch_sizes=(1, 2), seed=3)
    assert runner.stats.hits == 2
    np.testing.assert_array_equal(again[2].samples, results[2].samples)


def test_run_batch_sizes_validation(runner):
    with pytest.raises(ValueError):
        runner.run_batch_sizes(make_tiny_spec(), batch_sizes=(0, 2))
    with pytest.raises(ValueError):
        runner.run_batch_sizes(make_tiny_spec(), batch_sizes=())


def test_run_benchmark_accepts_table1_name(runner):
    result = runner.run_benchmark("IMG", num_steps=2, calibrate=False)
    assert result.benchmark == "IMG"
    assert result.num_model_calls == 2
    assert runner.run_benchmark("IMG", num_steps=2, calibrate=False).benchmark == "IMG"
    assert runner.stats.hits == 1
