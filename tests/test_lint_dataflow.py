"""Tests for the dataflow lint engine and the RPL007-RPL010 rules.

Each rule gets a violating fixture proving it fires and a clean twin proving
it stays quiet.  The engine layers (lattice, call graph, interprocedural
fixed point) get unit tests, RPL007 gets the paired static/runtime test that
pins the shared sink model with the ``REPRO_SANITIZE`` sanitizer, and the
precision decisions that keep the real tree quiet (init-time ``rng``
parameters are not per-request streams, ``generate()``'s lockstep batch draw
is not a replayed stream, ``is None`` guards are schedule-static) are pinned
as regressions against the repo itself.
"""

import ast
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.lint import Project, default_checkers, run_checkers
from repro.lint.dataflow import (
    AbstractValue,
    CallGraph,
    DataflowEngine,
    DtypeFlowChecker,
    LayoutFlowChecker,
    RngStreamChecker,
    SessionLifecycleChecker,
    engine_for,
)
from repro.lint.dataflow.lattice import (
    DT_F32,
    DT_F64,
    LAY_CONTIG,
    LAY_VIEW,
    TAG_RNG_STREAM,
    TOP,
    array_value,
    join,
)

REPO_ROOT = Path(repro.__file__).resolve().parents[2]

DATAFLOW_CHECKERS = (
    DtypeFlowChecker,
    LayoutFlowChecker,
    RngStreamChecker,
    SessionLifecycleChecker,
)


def lint_sources(sources, checkers=DATAFLOW_CHECKERS):
    project = Project.from_sources(sources)
    return run_checkers(project, [cls() for cls in checkers])


def engine_of(sources):
    return engine_for(Project.from_sources(sources))


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# lattice
# ---------------------------------------------------------------------------


def test_join_unions_evidence_and_absorbs_top():
    f32 = array_value(dtypes=frozenset({DT_F32}), layouts=frozenset({LAY_CONTIG}))
    f64 = array_value(dtypes=frozenset({DT_F64}), layouts=frozenset({LAY_VIEW}))
    joined = join(f32, f64)
    assert joined.dtypes == frozenset({DT_F32, DT_F64})
    assert joined.may_f64 and joined.may_view and not joined.is_contig
    # None (top / no information) absorbs on join.
    assert join(f32, TOP).dtypes is None
    assert join(TOP, f32).layouts is None


def test_evidence_properties_need_positive_evidence():
    unknown = AbstractValue()
    assert not unknown.may_f64 and not unknown.may_view and not unknown.is_contig
    contig = array_value(layouts=frozenset({LAY_CONTIG}))
    assert contig.is_contig
    mixed = array_value(layouts=frozenset({LAY_CONTIG, LAY_VIEW}))
    assert mixed.may_view and not mixed.is_contig


def test_join_unions_tags():
    tagged = AbstractValue(tags=frozenset({TAG_RNG_STREAM}))
    assert TAG_RNG_STREAM in join(tagged, AbstractValue()).tags
    assert tagged.without_tags(TAG_RNG_STREAM).tags == frozenset()


# ---------------------------------------------------------------------------
# call graph
# ---------------------------------------------------------------------------

GRAPH_SOURCES = {
    "src/repro/nn/functional.py": (
        "def linear(x, w):\n    return x\n"
    ),
    "src/repro/quant/util.py": (
        "class Base:\n"
        "    def step(self, x):\n"
        "        raise NotImplementedError\n"
        "    def run(self, x):\n"
        "        return self.step(x)\n"
        "class Impl(Base):\n"
        "    def step(self, x):\n"
        "        return x\n"
    ),
    "src/repro/quant/user.py": (
        "import numpy as np\n"
        "from ..nn import functional as F\n"
        "from .util import Base\n"
        "def helper(x):\n"
        "    return F.linear(x, x)\n"
        "def main(x):\n"
        "    return helper(np.asarray(x))\n"
    ),
}


def test_callgraph_resolves_local_import_and_alias_calls():
    graph = CallGraph(Project.from_sources(GRAPH_SOURCES))
    user = graph.module("src/repro/quant/user.py")
    tree = user.handle.tree
    calls = {
        ast.unparse(node.func): node for node in ast.walk(tree) if isinstance(node, ast.Call)
    }
    resolved = graph.resolve_call(calls["helper"], "src/repro/quant/user.py", None)
    assert resolved.qualname == "src/repro/quant/user.py::helper"
    linear = graph.resolve_call(calls["F.linear"], "src/repro/quant/user.py", None)
    assert linear.qualname == "src/repro/nn/functional.py::linear"
    assert graph.resolve_call(calls["np.asarray"], "src/repro/quant/user.py", None) is None
    assert graph.is_numpy_alias("src/repro/quant/user.py", "np")


def test_callgraph_virtual_dispatch_includes_subclass_overrides():
    graph = CallGraph(Project.from_sources(GRAPH_SOURCES))
    targets = graph.resolve_virtual("src/repro/quant/util.py", "Base", "step")
    names = {t.qualname.split("::")[1] for t in targets}
    assert names == {"Base.step", "Impl.step"}


def test_callgraph_constructor_resolves_to_init():
    sources = dict(GRAPH_SOURCES)
    sources["src/repro/quant/ctor.py"] = (
        "class Thing:\n"
        "    def __init__(self, x):\n"
        "        self.x = x\n"
        "def make():\n"
        "    return Thing(1)\n"
    )
    graph = CallGraph(Project.from_sources(sources))
    tree = graph.module("src/repro/quant/ctor.py").handle.tree
    call = next(n for n in ast.walk(tree) if isinstance(n, ast.Call))
    resolved = graph.resolve_call(call, "src/repro/quant/ctor.py", None)
    assert resolved.qualname == "src/repro/quant/ctor.py::Thing.__init__"


# ---------------------------------------------------------------------------
# interpreter: interprocedural evidence flow
# ---------------------------------------------------------------------------


def test_param_evidence_joins_across_call_sites():
    engine = engine_of(
        {
            "src/repro/quant/flow.py": (
                "import numpy as np\n"
                "def sink(v):\n"
                "    return v\n"
                "def caller():\n"
                "    sink(np.zeros((2, 2)))\n"
                "    sink(np.zeros((2, 2), dtype=np.float32))\n"
            )
        }
    )
    info = engine.graph.functions["src/repro/quant/flow.py::sink"]
    param = engine.summary(info).param_values[0]
    assert param.dtypes == frozenset({DT_F64, DT_F32})
    # `array` is tri-state with no bottom: the join of unknown-and-True stays
    # unknown, which is why the rules key off dtype/layout evidence instead.
    assert param.array is not False


def test_return_summaries_feed_call_sites():
    engine = engine_of(
        {
            "src/repro/quant/flow.py": (
                "import numpy as np\n"
                "def make():\n"
                "    return np.ones((2, 2))\n"
                "def use():\n"
                "    x = make()\n"
                "    return x\n"
            )
        }
    )
    use = engine.graph.functions["src/repro/quant/flow.py::use"]
    assert engine.summary(use).return_value.may_f64


def test_branch_join_and_loop_widening():
    engine = engine_of(
        {
            "src/repro/quant/flow.py": (
                "import numpy as np\n"
                "def branchy(flag):\n"
                "    x = np.zeros((2, 2), dtype=np.float32)\n"
                "    if flag:\n"
                "        x = np.zeros((2, 2))\n"
                "    return x\n"
                "def loopy():\n"
                "    x = np.zeros((2, 2), dtype=np.float32)\n"
                "    for _ in range(3):\n"
                "        x = x + np.zeros((2, 2))\n"
                "    return x\n"
            )
        }
    )
    fns = engine.graph.functions
    branchy = engine.summary(fns["src/repro/quant/flow.py::branchy"]).return_value
    assert branchy.dtypes == frozenset({DT_F32, DT_F64})
    loopy = engine.summary(fns["src/repro/quant/flow.py::loopy"]).return_value
    assert loopy.may_f64 and DT_F32 in loopy.dtypes


def test_python_float_scalars_are_weak():
    # NEP-50: `x * 0.5` on a float32 array must not produce f64 evidence.
    engine = engine_of(
        {
            "src/repro/quant/flow.py": (
                "import numpy as np\n"
                "def scale():\n"
                "    x = np.zeros((2, 2), dtype=np.float32)\n"
                "    return x * 0.5\n"
                "def strong():\n"
                "    x = np.zeros((2, 2), dtype=np.float32)\n"
                "    return x * np.sqrt(2.0)\n"
            )
        }
    )
    fns = engine.graph.functions
    weak = engine.summary(fns["src/repro/quant/flow.py::scale"]).return_value
    assert not weak.may_f64
    # A strong np.float64 scalar (np.sqrt on a python float) does promote.
    strong = engine.summary(fns["src/repro/quant/flow.py::strong"]).return_value
    assert strong.may_f64


# ---------------------------------------------------------------------------
# RPL007 - dtype flow into f32-region kernels
# ---------------------------------------------------------------------------

RPL007_BAD = """\
import numpy as np

from ..nn import functional as F
from .calibration import calibration_precision


def collect(model, pipeline, w32):
    stats = np.zeros((2, 3))
    with calibration_precision(model, pipeline, np.float32):
        hidden = stats
        return F.linear(hidden, w32)
"""

RPL007_CLEAN = """\
import numpy as np

from ..nn import functional as F
from .calibration import calibration_precision


def collect(model, pipeline, w32):
    stats = np.zeros((2, 3))
    with calibration_precision(model, pipeline, np.float32):
        hidden = stats.astype(np.float32)
        part = F.linear(hidden, w32)
    outside = F.linear(stats, w32)  # float64 outside the region: fine
    return part + outside
"""

RPL007_HELPER_BAD = """\
import numpy as np

from ..nn import functional as F
from .calibration import calibration_precision


def project(hidden, w32):
    return F.linear(hidden, w32)


def collect(model, pipeline, w32):
    with calibration_precision(model, pipeline, np.float32):
        return project(np.zeros((2, 3)), w32)
"""


def test_rpl007_flags_f64_reaching_kernel_in_region():
    findings = lint_sources({"src/repro/quant/bad.py": RPL007_BAD})
    assert rules_of(findings) == ["RPL007"]
    assert "hidden" in findings[0].message
    assert "float32 calibration region" in findings[0].message


def test_rpl007_clean_twin_is_quiet():
    assert lint_sources({"src/repro/quant/good.py": RPL007_CLEAN}) == []


def test_rpl007_follows_helper_calls_out_of_the_region():
    # The kernel call sits in a helper that is only ever invoked from inside
    # the region: region taint propagates caller -> callee.
    findings = lint_sources({"src/repro/quant/bad.py": RPL007_HELPER_BAD})
    assert rules_of(findings) == ["RPL007"]
    assert findings[0].line == 8  # anchored at the sink inside the helper


def test_rpl007_assume_f32_silences():
    source = RPL007_BAD.replace(
        "        return F.linear(hidden, w32)",
        "        # repro-lint: assume[f32]\n        return F.linear(hidden, w32)",
    )
    assert lint_sources({"src/repro/quant/bad.py": source}) == []


def test_rpl007_static_and_runtime_sanitizer_agree():
    """The paired static/runtime test: one defect class, both catchers.

    RPL007 is the static twin of ``REPRO_SANITIZE=1`` - both import the same
    kernel list from ``repro.lint.runtime``, so a float64 array reaching
    ``F.linear`` inside a float32 calibration region is (a) flagged by the
    dataflow rule on the fixture source and (b) raises ``SanitizerError``
    when the equivalent code actually runs under the sanitizer.
    """
    from repro.lint import runtime as lint_runtime
    from repro.nn import functional as F

    findings = lint_sources({"src/repro/quant/bad.py": RPL007_BAD})
    assert rules_of(findings) == ["RPL007"]

    stats = np.zeros((2, 3))  # float64, same as the fixture's `stats`
    w32 = np.ones((4, 3), dtype=np.float32)
    with lint_runtime.sanitized():
        with lint_runtime.calibration_region(np.float32):
            with pytest.raises(lint_runtime.SanitizerError, match="float64"):
                F.linear(stats, w32)
            # The clean twin's cast runs clean under the same sanitizer.
            out = F.linear(stats.astype(np.float32), w32)
    assert out.dtype == np.float32


def test_rpl007_shares_kernel_model_with_runtime():
    from repro.lint.dataflow.rules import _F_KERNELS
    from repro.lint.runtime import COLS_CHECKED_KERNELS, DTYPE_CHECKED_KERNELS

    assert _F_KERNELS == set(DTYPE_CHECKED_KERNELS) | set(COLS_CHECKED_KERNELS)


# ---------------------------------------------------------------------------
# RPL008 - layout flow into GEMM sinks
# ---------------------------------------------------------------------------

RPL008_BAD = """\
import numpy as np


def run(a, b):
    flipped = b.transpose(1, 0)
    return np.matmul(a, flipped)
"""

RPL008_CLEAN = """\
import numpy as np


def run(a, b):
    flipped = np.ascontiguousarray(b.transpose(1, 0))
    return np.matmul(a, flipped)
"""

RPL008_HELPER_BAD = """\
import numpy as np


def flip(b):
    return b.transpose(1, 0)


def run(a, b):
    return np.matmul(a, flip(b))
"""


def test_rpl008_flags_view_through_assignment():
    findings = lint_sources({"src/repro/quant/bad.py": RPL008_BAD})
    assert rules_of(findings) == ["RPL008"]
    assert "flipped" in findings[0].message
    assert "def-use chain" in findings[0].message


def test_rpl008_clean_twin_is_quiet():
    assert lint_sources({"src/repro/quant/good.py": RPL008_CLEAN}) == []


def test_rpl008_follows_helper_returns():
    findings = lint_sources({"src/repro/quant/bad.py": RPL008_HELPER_BAD})
    assert rules_of(findings) == ["RPL008"]


def test_rpl008_leaves_direct_views_to_rpl005():
    # A transpose written directly in the argument list is RPL005's finding;
    # RPL008 must not double-report it.
    source = (
        "import numpy as np\n"
        "def run(a, b):\n"
        "    return np.matmul(a, b.transpose(1, 0))\n"
    )
    findings = lint_sources(
        {"src/repro/quant/bad.py": source}, checkers=(LayoutFlowChecker,)
    )
    assert findings == []


def test_rpl008_scope_gating():
    # Outside the GEMM directories the src-scope rule stays quiet...
    assert lint_sources({"src/repro/metrics/bad.py": RPL008_BAD}) == []
    # ...but scripts/ are in scope without a directory restriction.
    findings = lint_sources({"scripts/bad.py": RPL008_BAD})
    assert rules_of(findings) == ["RPL008"]


def test_rpl008_assume_contiguous_silences():
    source = RPL008_BAD.replace(
        "    return np.matmul(a, flipped)",
        "    # repro-lint: assume[c-contiguous]\n    return np.matmul(a, flipped)",
    )
    assert lint_sources({"src/repro/quant/bad.py": source}) == []


# ---------------------------------------------------------------------------
# RPL009 - per-request RNG stream draw discipline
# ---------------------------------------------------------------------------

RPL009_BAD_SHAPE = """\
def recover(request, n, sample_shape):
    rng = request.sampler_rng()
    return rng.standard_normal((n,) + sample_shape)
"""

RPL009_BAD_GUARD = """\
import numpy as np


def step(request, eps: np.ndarray, x):
    rng = request.sampler_rng()
    if eps.mean() > 0:
        return rng.standard_normal(x.shape)
    return x
"""

RPL009_BAD_LOOP = """\
def replay(request, steps, x):
    rng = request.sampler_rng()
    for _ in range(steps):
        x = x + rng.standard_normal(x.shape)
    return x
"""

RPL009_CLEAN = """\
def step(request, sigma, x, sample_shape):
    rng = request.sampler_rng()
    if x is None:
        x = rng.standard_normal((1,) + sample_shape)
    if sigma > 0.0:
        noise = rng.standard_normal(x.shape)
        return x + sigma * noise
    return x
"""


def test_rpl009_flags_non_row_shape():
    findings = lint_sources({"src/repro/runtime/bad.py": RPL009_BAD_SHAPE})
    assert rules_of(findings) == ["RPL009"]
    assert "not statically row-shaped" in findings[0].message


def test_rpl009_flags_data_dependent_guard():
    findings = lint_sources({"src/repro/runtime/bad.py": RPL009_BAD_GUARD})
    assert rules_of(findings) == ["RPL009"]
    assert "data-dependent predicate" in findings[0].message


def test_rpl009_flags_loop_invariant_stream_in_loop():
    findings = lint_sources({"src/repro/runtime/bad.py": RPL009_BAD_LOOP})
    assert any("inside a loop" in f.message for f in findings)


def test_rpl009_clean_twin_is_quiet():
    # Row-shaped draws, an `is None` identity guard and a scalar schedule
    # guard (sigma) are all replay-countable: no findings.
    assert lint_sources({"src/repro/runtime/good.py": RPL009_CLEAN}) == []


def test_rpl009_assume_row_shape_silences():
    source = RPL009_BAD_SHAPE.replace(
        "    return rng.standard_normal((n,) + sample_shape)",
        "    # repro-lint: assume[row-shape]\n"
        "    return rng.standard_normal((n,) + sample_shape)",
    )
    assert lint_sources({"src/repro/runtime/bad.py": source}) == []


def test_rpl009_plain_rng_params_are_not_streams():
    # Regression pin: a generic `rng` parameter (weight init, dataset
    # synthesis) is not a per-request stream; only factory provenance
    # (`sampler_rng()`, `ReplayableRNG`) and rngs/streams containers tag.
    source = (
        "def init_weights(shape, rng):\n"
        "    return rng.standard_normal(shape) * 0.02\n"
    )
    assert lint_sources({"src/repro/nn/bad.py": source}) == []


def test_rpl009_replayable_rng_constructor_tags():
    source = (
        "from .faults import ReplayableRNG\n"
        "def recover(generator, k, shape):\n"
        "    rng = ReplayableRNG(generator)\n"
        "    return rng.standard_normal((k,) + shape)\n"
    )
    findings = lint_sources({"src/repro/runtime/bad.py": source})
    assert rules_of(findings) == ["RPL009"]


def test_rpl009_streams_flow_through_containers():
    # The serving idiom: a list comprehension of sampler_rng() handles,
    # passed onward and indexed per row.
    source = (
        "def launch(requests, sample_shape):\n"
        "    rngs = [r.sampler_rng() for r in requests]\n"
        "    return [rngs[i].standard_normal(sample_shape) for i in range(len(rngs))]\n"
    )
    findings = lint_sources({"src/repro/runtime/bad.py": source})
    assert rules_of(findings) == ["RPL009"]  # sample_shape is not row-shaped


# ---------------------------------------------------------------------------
# RPL010 - EngineSession lifecycle
# ---------------------------------------------------------------------------

RPL010_BAD_HEALTH = """\
def drive(engine, batch):
    session = engine.open_session()
    try:
        session.step(batch)
    except RuntimeError as exc:
        session.mark_unhealthy(str(exc))
    session.admit(batch)
"""

RPL010_CLEAN_HEALTH = """\
def drive(engine, batch):
    session = engine.open_session()
    try:
        session.step(batch)
    except RuntimeError as exc:
        session.mark_unhealthy(str(exc))
        session = engine.open_session()
    session.admit(batch)
"""

RPL010_BAD_COMMIT = """\
class EngineSession:
    def step(self, plan, x, t):
        remap = self.remap_model_rows(plan)
        eps = self.predict_noise_rows(x, t)
        self._mapping = remap
        return eps
"""

RPL010_CLEAN_COMMIT = """\
class EngineSession:
    def step(self, plan, x, t):
        remap = self.remap_model_rows(plan)
        self._mapping = remap
        eps = self.predict_noise_rows(x, t)
        return eps
"""


def test_rpl010_flags_admit_after_mark_unhealthy():
    findings = lint_sources({"src/repro/runtime/bad.py": RPL010_BAD_HEALTH})
    assert rules_of(findings) == ["RPL010"]
    assert "marked unhealthy" in findings[0].message
    assert findings[0].line == 7


def test_rpl010_rebinding_to_recovered_session_is_quiet():
    assert lint_sources({"src/repro/runtime/good.py": RPL010_CLEAN_HEALTH}) == []


def test_rpl010_flags_forward_before_commit():
    findings = lint_sources({"src/repro/core/bad.py": RPL010_BAD_COMMIT})
    assert rules_of(findings) == ["RPL010"]
    assert "commit-before-forward" in findings[0].message


def test_rpl010_commit_before_forward_is_quiet():
    assert lint_sources({"src/repro/core/good.py": RPL010_CLEAN_COMMIT}) == []


def test_rpl010_assume_escapes():
    healthy = RPL010_BAD_HEALTH.replace(
        "    session.admit(batch)",
        "    # repro-lint: assume[healthy]\n    session.admit(batch)",
    )
    assert lint_sources({"src/repro/runtime/bad.py": healthy}) == []
    committed = RPL010_BAD_COMMIT.replace(
        "        eps = self.predict_noise_rows(x, t)",
        "        # repro-lint: assume[committed]\n"
        "        eps = self.predict_noise_rows(x, t)",
    )
    assert lint_sources({"src/repro/core/bad.py": committed}) == []


# ---------------------------------------------------------------------------
# the engine against the real tree: precision regressions + shared engine
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def repo_engine():
    from repro.lint.framework import load_project

    return engine_for(load_project(REPO_ROOT))


def test_engine_is_shared_per_project():
    project = Project.from_sources({"src/repro/quant/mod.py": "x = 1\n"})
    assert engine_for(project) is engine_for(project)


def test_repo_sampler_draws_are_tracked(repo_engine):
    # The interprocedural chain that makes RPL009 meaningful on this tree:
    # serving builds per-request streams, `step_rows` forwards `rng=` through
    # virtual dispatch into the sampler overrides, and the DDIM/DDPM noise
    # draws register as stream draws.  If this breaks, RPL009 silently stops
    # guarding the fast_forward contract.
    paths = {draw.path for draw in repo_engine.all_draws()}
    assert "src/repro/diffusion/samplers.py" in paths


def test_repo_lockstep_generate_is_not_a_stream_draw(repo_engine):
    # Regression pin: GenerationPipeline.generate()'s batch-lockstep
    # generator draws (batch, *sample) - a deliberate non-row shape - and
    # must NOT count as a per-request stream draw.
    for draw in repo_engine.all_draws():
        if draw.path == "src/repro/diffusion/pipeline.py":
            fn_name = draw.fn.name
            assert fn_name != "generate", "generate() batch draw wrongly stream-tagged"


def test_repo_is_clean_under_dataflow_rules(repo_engine):
    findings = []
    for cls in DATAFLOW_CHECKERS:
        findings.extend(cls().check_project(repo_engine.project))
    assert findings == [], "\n".join(str(f) for f in findings)


def test_repo_engine_converged_quickly(repo_engine):
    # The fixed point over the whole tree stays small: every function got a
    # summary and the facts tables are populated.
    assert len(repo_engine.summaries) > 100
    assert repo_engine.all_calls()


def test_default_checkers_include_dataflow_rules():
    rules = {c.rule for c in default_checkers()}
    assert {"RPL007", "RPL008", "RPL009", "RPL010"} <= rules
