"""Unit tests for the offline calibration collectors."""

import numpy as np
import pytest

from repro.nn import Conv2d, Linear, Module, SiLU
from repro.quant import CalibrationCollector, calibrate_model


class SmallNet(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.conv = Conv2d(2, 4, 3, padding=1, rng=rng)
        self.act = SiLU()
        self.fc = Linear(4, 2, rng=rng)

    def forward(self, x):
        h = self.act(self.conv(x)).mean(axis=(2, 3))
        return self.fc(h)


def test_collector_observes_all_linear_layers(rng):
    net = SmallNet()
    with CalibrationCollector(net) as collector:
        net(rng.normal(size=(1, 2, 6, 6)))
    scales = collector.scales()
    assert set(scales) == {"conv", "fc"}
    assert all(s > 0 for s in scales.values())


def test_collector_tracks_running_max():
    net = SmallNet()
    with CalibrationCollector(net) as collector:
        net(np.full((1, 2, 6, 6), 1.0))
        net(np.full((1, 2, 6, 6), 8.0))
    scale = collector.scales()["conv"]
    assert scale == pytest.approx(8.0 / 127.0)


def test_collector_removes_hooks():
    net = SmallNet()
    with CalibrationCollector(net):
        pass
    assert all(not m._forward_hooks for m in net.modules())


def test_calibrate_model_convenience(rng):
    net = SmallNet()
    scales = calibrate_model(net, lambda: net(rng.normal(size=(1, 2, 6, 6))))
    assert "conv" in scales and "fc" in scales


def test_calibrated_scales_round_trip_into_quantized_model(rng):
    from repro.quant import iter_qlayers, quantize_model

    net = SmallNet()
    x = rng.normal(size=(1, 2, 6, 6))
    scales = calibrate_model(net, lambda: net(x))
    qnet = quantize_model(net, calibration=scales)
    layers = dict(iter_qlayers(qnet))
    assert layers["conv"].input_quant.scale == pytest.approx(scales["conv"])
    # The calibrated quantized model runs without touching the sticky path.
    out = qnet(x)
    assert out.shape == (1, 2)


def test_calibration_covers_trajectory_extremes(rng):
    """The calibrated scale must never be exceeded by in-trajectory values."""
    net = SmallNet()
    inputs = [rng.normal(scale=s, size=(1, 2, 6, 6)) for s in (0.1, 1.0, 3.0)]

    def run():
        for x in inputs:
            net(x)

    scales = calibrate_model(net, run)
    peak = max(float(np.abs(x).max()) for x in inputs)
    assert scales["conv"] * 127.0 >= peak - 1e-9
